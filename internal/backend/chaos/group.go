package chaos

import (
	"sync"
	"time"

	"photon/internal/core"
)

// Group coordinates fault state across every rank of one chaos-wrapped
// job, modelling whole-process death the way a cluster sees it: from
// the instant a rank is killed its traffic is blackholed everywhere
// (frames already on the wire may still land, new ones never do), and
// after the group's detection delay every surviving rank's failure
// detector reports the corpse down and posts toward it fail fast with
// core.ErrPeerDown. The delay stands in for heartbeat-interval ×
// miss-budget on a real transport, so detection→abort latency can be
// swept as an experiment axis without wiring real heartbeats through
// the in-process fabrics.
//
// A killed rank sees the inverse: its own backend blackholes all posts
// and reports every peer down, so the victim's collective also aborts
// promptly instead of spinning — its error is simply not asserted on.
//
// Kill latches are terminal, matching the engine's health machine.
type Group struct {
	detectNS int64

	//photon:lock chaosgroup 12
	mu   sync.Mutex
	dead map[int]int64 // rank -> kill wall-clock UnixNano (first kill wins)
}

// NewGroup builds a group whose kills become detectable after detect.
// A zero or negative detect makes detection immediate.
func NewGroup(detect time.Duration) *Group {
	return &Group{detectNS: int64(detect), dead: make(map[int]int64)}
}

// Kill latches rank dead as of now. Idempotent: a second kill keeps the
// first kill time.
func (g *Group) Kill(rank int) {
	now := time.Now().UnixNano()
	g.mu.Lock()
	if _, dup := g.dead[rank]; !dup {
		g.dead[rank] = now
	}
	g.mu.Unlock()
}

// Killed reports whether rank has been killed (regardless of whether
// detectors can see it yet).
func (g *Group) Killed(rank int) bool {
	g.mu.Lock()
	_, ok := g.dead[rank]
	g.mu.Unlock()
	return ok
}

// KilledAtNS returns the wall-clock UnixNano of rank's kill, or 0.
func (g *Group) KilledAtNS(rank int) int64 {
	g.mu.Lock()
	ns := g.dead[rank]
	g.mu.Unlock()
	return ns
}

// status classifies rank: dead means killed (traffic toward it is
// blackholed), detected means the detection delay has also elapsed
// (posts fail fast and PeerHealth reports down).
func (g *Group) status(rank int) (dead, detected bool) {
	g.mu.Lock()
	ns, ok := g.dead[rank]
	g.mu.Unlock()
	if !ok {
		return false, false
	}
	return true, time.Now().UnixNano() >= ns+g.detectNS
}

// Trigger state on Backend: deterministic crash/partition at the Nth
// posted write from this rank. Counters are atomics so concurrent
// shard posters race benignly — the trigger fires exactly once, on
// whichever post crosses zero.

// CrashAfterOps arms self-death at the n-th PostWrite from this rank
// (n >= 1). Requires a group (WrapGroup); firing latches this rank
// dead in it, mid-round from the peers' point of view.
func (b *Backend) CrashAfterOps(n int) {
	b.crashIn.Store(int64(n))
}

// PartitionAfterOps arms a one-way partition toward peer at the n-th
// PostWrite from this rank (n >= 1) — the mid-round network-split
// trigger. Unlike a crash it is local to this side and silent: posts
// claim success and vanish.
func (b *Backend) PartitionAfterOps(n int, peer int) {
	b.partPeer.Store(int64(peer))
	b.partIn.Store(int64(n))
}

// tick advances the armed op-count triggers by one posted write.
func (b *Backend) tick() {
	if b.crashIn.Load() > 0 && b.crashIn.Add(-1) == 0 {
		if b.group != nil {
			b.group.Kill(b.inner.Rank())
		}
	}
	if b.partIn.Load() > 0 && b.partIn.Add(-1) == 0 {
		b.Partition(int(b.partPeer.Load()), true)
	}
}

// groupGate is the group-death check run before the per-backend plan:
// a killed self blackholes everything, a detected corpse fails fast,
// an undetected one blackholes. It takes only the group's own lock,
// never nested under b.mu.
func (b *Backend) groupGate(rank int) (drop bool, err error) {
	if b.group == nil {
		return false, nil
	}
	self := b.inner.Rank()
	if rank == self {
		return false, nil
	}
	if b.group.Killed(self) {
		return true, nil
	}
	dead, detected := b.group.status(rank)
	if detected {
		return false, core.ErrPeerDown
	}
	if dead {
		return true, nil
	}
	return false, nil
}
