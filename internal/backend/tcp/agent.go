package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"photon/internal/core"
)

// replyQueue is the unbounded per-peer response queue. Readers append
// (never blocking) and the writer loop drains it ahead of requests;
// keeping the reader non-blocking breaks the bidirectional-saturation
// deadlock that bounded reply channels would allow.
type replyQueue struct {
	mu   sync.Mutex
	q    [][]byte
	wake chan struct{}
}

func newReplyQueue() *replyQueue {
	return &replyQueue{wake: make(chan struct{}, 1)}
}

func (r *replyQueue) push(f []byte) {
	r.mu.Lock()
	r.q = append(r.q, f)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *replyQueue) pop() ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.q) == 0 {
		return nil, false
	}
	f := r.q[0]
	r.q = r.q[1:]
	return f, true
}

// writer drains a peer's request channel (and reply queue) into the
// socket; for the self rank it applies requests locally instead.
func (b *Backend) writer(peer int) {
	defer b.sendWG.Done()
	rq := b.replyQueueFor(peer)
	conn := b.conns[peer]
	var sendBuf []byte
	send := func(frame []byte) bool {
		if peer == b.rank {
			b.handleFrame(peer, frame)
			return true
		}
		// One Write per frame: header and body together, so a frame
		// is never split across TCP segments by our own syscalls.
		if cap(sendBuf) < 4+len(frame) {
			sendBuf = make([]byte, 0, 4+len(frame))
		}
		sendBuf = sendBuf[:4+len(frame)]
		binary.LittleEndian.PutUint32(sendBuf, uint32(len(frame)))
		copy(sendBuf[4:], frame)
		_, err := conn.Write(sendBuf)
		return err == nil
	}
	for {
		// Replies first: they unblock the peer.
		if f, ok := rq.pop(); ok {
			if !send(f) {
				return
			}
			continue
		}
		select {
		case <-b.closed:
			return
		case <-rq.wake:
			// loop; pop above
		case of := <-b.outs[peer]:
			if !send(of.data) {
				// Connection lost: fail the op locally.
				if of.signaled {
					b.pushComp(core.BackendCompletion{Token: of.token, OK: false, Err: fmt.Errorf("tcp: connection to rank %d lost", peer)})
				}
				return
			}
		}
	}
}

// replyQueueFor returns (building lazily) the reply queue toward peer.
func (b *Backend) replyQueueFor(peer int) *replyQueue {
	b.outMu.Lock()
	defer b.outMu.Unlock()
	if b.replyQs == nil {
		b.replyQs = make([]*replyQueue, b.size)
	}
	if b.replyQs[peer] == nil {
		b.replyQs[peer] = newReplyQueue()
	}
	return b.replyQs[peer]
}

// reader consumes frames arriving from peer.
func (b *Backend) reader(peer int, conn net.Conn) {
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > 1<<30 {
			return // absurd frame; poisoned stream
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		b.handleFrame(peer, frame)
	}
}

// handleFrame dispatches one inbound frame (requests are applied
// against local memory; responses complete pending tokens).
func (b *Backend) handleFrame(peer int, f []byte) {
	if len(f) < 1 {
		return
	}
	switch f[0] {
	case opWrite:
		if len(f) < 26 {
			return
		}
		token := binary.LittleEndian.Uint64(f[1:])
		signaled := f[9] == 1
		raddr := binary.LittleEndian.Uint64(f[10:])
		rkey := binary.LittleEndian.Uint32(f[18:])
		n := int(binary.LittleEndian.Uint32(f[22:]))
		payload := f[26:]
		if n > len(payload) {
			n = len(payload)
		}
		b.memMu.Lock()
		reg, err := b.lookup(rkey, raddr, n)
		if err == nil {
			copy(reg.buf[raddr-reg.base:], payload[:n])
		}
		b.memMu.Unlock()
		if err == nil {
			b.writeAct.Add(1)
		}
		if signaled {
			b.reply(peer, ackFrame(token, err))
		}
	case opRead:
		if len(f) < 25 {
			return
		}
		token := binary.LittleEndian.Uint64(f[1:])
		raddr := binary.LittleEndian.Uint64(f[9:])
		rkey := binary.LittleEndian.Uint32(f[17:])
		n := int(binary.LittleEndian.Uint32(f[21:]))
		resp := make([]byte, 1+8+1+n)
		resp[0] = opReadResp
		binary.LittleEndian.PutUint64(resp[1:], token)
		b.memMu.RLock()
		reg, err := b.lookup(rkey, raddr, n)
		if err == nil {
			copy(resp[10:], reg.buf[raddr-reg.base:raddr-reg.base+uint64(n)])
		}
		b.memMu.RUnlock()
		if err != nil {
			resp = resp[:10]
			resp[9] = 1 // status: failed
		}
		b.reply(peer, resp)
	case opFAdd, opCSwap:
		b.handleAtomic(peer, f)
	case opAck:
		if len(f) < 10 {
			return
		}
		token := binary.LittleEndian.Uint64(f[1:])
		ok := f[9] == 0
		var err error
		if !ok {
			err = fmt.Errorf("tcp: remote write failed")
		}
		b.pushComp(core.BackendCompletion{Token: token, OK: ok, Err: err})
	case opReadResp:
		if len(f) < 10 {
			return
		}
		token := binary.LittleEndian.Uint64(f[1:])
		failed := f[9] == 1
		b.pendMu.Lock()
		dst := b.pendBuf[token]
		delete(b.pendBuf, token)
		b.pendMu.Unlock()
		if !failed && dst != nil {
			copy(dst, f[10:])
		}
		var err error
		if failed {
			err = fmt.Errorf("tcp: remote read failed")
		}
		b.pushComp(core.BackendCompletion{Token: token, OK: !failed, Err: err})
	case opAtomicResp:
		if len(f) < 18 {
			return
		}
		token := binary.LittleEndian.Uint64(f[1:])
		failed := f[9] == 1
		b.pendMu.Lock()
		dst := b.pendBuf[token]
		delete(b.pendBuf, token)
		b.pendMu.Unlock()
		if !failed && dst != nil {
			copy(dst, f[10:18])
		}
		var err error
		if failed {
			err = fmt.Errorf("tcp: remote atomic failed")
		}
		b.pushComp(core.BackendCompletion{Token: token, OK: !failed, Err: err})
	case opExg:
		b.handleExg(peer, f[1:])
	case opExgResp:
		b.handleExgResp(f[1:])
	}
}

func (b *Backend) handleAtomic(peer int, f []byte) {
	if len(f) < 29 {
		return
	}
	token := binary.LittleEndian.Uint64(f[1:])
	raddr := binary.LittleEndian.Uint64(f[9:])
	rkey := binary.LittleEndian.Uint32(f[17:])
	operand := binary.LittleEndian.Uint64(f[21:])
	var swap uint64
	if f[0] == opCSwap {
		if len(f) < 37 {
			return
		}
		swap = binary.LittleEndian.Uint64(f[29:])
	}
	resp := make([]byte, 1+8+1+8)
	resp[0] = opAtomicResp
	binary.LittleEndian.PutUint64(resp[1:], token)
	b.memMu.Lock()
	reg, err := b.lookup(rkey, raddr, 8)
	if err == nil && raddr%8 != 0 {
		err = fmt.Errorf("tcp: misaligned atomic")
	}
	if err == nil {
		off := raddr - reg.base
		orig := binary.LittleEndian.Uint64(reg.buf[off:])
		switch f[0] {
		case opFAdd:
			binary.LittleEndian.PutUint64(reg.buf[off:], orig+operand)
		case opCSwap:
			if orig == operand {
				binary.LittleEndian.PutUint64(reg.buf[off:], swap)
			}
		}
		binary.LittleEndian.PutUint64(resp[10:], orig)
	}
	b.memMu.Unlock()
	if err != nil {
		resp[9] = 1
	} else {
		b.writeAct.Add(1)
	}
	b.reply(peer, resp)
}

func ackFrame(token uint64, err error) []byte {
	f := make([]byte, 10)
	f[0] = opAck
	binary.LittleEndian.PutUint64(f[1:], token)
	if err != nil {
		f[9] = 1
	}
	return f
}

// reply routes a response frame back to peer (loopback applies
// directly).
func (b *Backend) reply(peer int, f []byte) {
	if peer == b.rank {
		b.handleFrame(peer, f)
		return
	}
	b.replyQueueFor(peer).push(f)
}

// ---------------------------------------------------------------------
// Bootstrap exchange: star over rank 0.
// ---------------------------------------------------------------------

// Exchange implements the collective allgather.
func (b *Backend) Exchange(local []byte) ([][]byte, error) {
	if b.size == 1 {
		return [][]byte{append([]byte(nil), local...)}, nil
	}
	if b.rank == 0 {
		return b.exchangeRoot(local)
	}
	// Ship the blob to the root (blocking enqueue: exchange is a
	// collective, so waiting is correct).
	f := make([]byte, 1+4+len(local))
	f[0] = opExg
	binary.LittleEndian.PutUint32(f[1:], uint32(len(local)))
	copy(f[5:], local)
	select {
	case b.outs[0] <- outFrame{data: f}:
	case <-b.closed:
		return nil, core.ErrClosed
	}
	// Wait for the root's broadcast.
	b.exgMu.Lock()
	defer b.exgMu.Unlock()
	for len(b.exgResp) == 0 {
		if b.isClosed() {
			return nil, core.ErrClosed
		}
		b.exgCond.Wait()
	}
	out := b.exgResp[0]
	b.exgResp = b.exgResp[1:]
	return out, nil
}

func (b *Backend) isClosed() bool {
	select {
	case <-b.closed:
		return true
	default:
		return false
	}
}

func (b *Backend) exchangeRoot(local []byte) ([][]byte, error) {
	b.exgMu.Lock()
	b.exgSelf = append(b.exgSelf, append([]byte(nil), local...))
	// Wait until one blob from every peer (and self) is queued.
	for {
		if b.isClosed() {
			b.exgMu.Unlock()
			return nil, core.ErrClosed
		}
		ready := len(b.exgSelf) > 0
		for r := 1; r < b.size; r++ {
			if len(b.exgGather[r]) == 0 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		b.exgCond.Wait()
	}
	out := make([][]byte, b.size)
	out[0] = b.exgSelf[0]
	b.exgSelf = b.exgSelf[1:]
	for r := 1; r < b.size; r++ {
		out[r] = b.exgGather[r][0]
		b.exgGather[r] = b.exgGather[r][1:]
	}
	b.exgMu.Unlock()
	// Broadcast the result.
	resp := encodeExgResp(out)
	for r := 1; r < b.size; r++ {
		select {
		case b.outs[r] <- outFrame{data: resp}:
		case <-b.closed:
			return nil, core.ErrClosed
		}
	}
	return out, nil
}

// handleExg queues a gathered blob at the root.
func (b *Backend) handleExg(peer int, body []byte) {
	if len(body) < 4 {
		return
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > len(body)-4 {
		n = len(body) - 4
	}
	blob := append([]byte(nil), body[4:4+n]...)
	b.exgMu.Lock()
	b.exgGather[peer] = append(b.exgGather[peer], blob)
	b.exgCond.Broadcast()
	b.exgMu.Unlock()
}

// handleExgResp delivers the root's broadcast to the local waiter.
func (b *Backend) handleExgResp(body []byte) {
	out, err := decodeExgResp(body)
	if err != nil {
		return
	}
	b.exgMu.Lock()
	b.exgResp = append(b.exgResp, out)
	b.exgCond.Broadcast()
	b.exgMu.Unlock()
}

func encodeExgResp(blobs [][]byte) []byte {
	total := 1 + 4
	for _, b := range blobs {
		total += 4 + len(b)
	}
	f := make([]byte, total)
	f[0] = opExgResp
	binary.LittleEndian.PutUint32(f[1:], uint32(len(blobs)))
	off := 5
	for _, blob := range blobs {
		binary.LittleEndian.PutUint32(f[off:], uint32(len(blob)))
		off += 4
		copy(f[off:], blob)
		off += len(blob)
	}
	return f
}

func decodeExgResp(body []byte) ([][]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("tcp: short exchange response")
	}
	count := int(binary.LittleEndian.Uint32(body))
	out := make([][]byte, 0, count)
	off := 4
	for i := 0; i < count; i++ {
		if off+4 > len(body) {
			return nil, fmt.Errorf("tcp: truncated exchange response")
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+n > len(body) {
			return nil, fmt.Errorf("tcp: truncated exchange blob")
		}
		out = append(out, append([]byte(nil), body[off:off+n]...))
		off += n
	}
	return out, nil
}
