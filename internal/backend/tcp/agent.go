package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"photon/internal/core"
)

// replyFrame is one queued response (or nack) with the cumulative ack
// it carries in its frame header. The stamp is captured at push time —
// the applied-signaled-write count from this peer at that moment — so
// a response frame also acknowledges every write applied before the
// operation it answers, which is what keeps cross-kind completions in
// posting order at the initiator.
type replyFrame struct {
	data  []byte
	stamp uint64
	// nackSeq is non-zero when data is a write-failure nack for
	// signaled write #nackSeq; the writer tracks the highest drained
	// value to keep later stamps from overtaking a queued nack.
	nackSeq uint64
}

// replyQueue is the unbounded per-peer response queue. Readers append
// (never blocking) and the writer loop drains it ahead of requests;
// keeping the reader non-blocking breaks the bidirectional-saturation
// deadlock that bounded reply channels would allow.
//
// Pops advance a head index instead of reslicing (`q = q[1:]` would
// pin every popped frame in the backing array); popped slots are
// cleared for GC and the array is reused from the start whenever the
// queue drains, with periodic compaction under sustained backlog.
type replyQueue struct {
	//photon:lock tcpreply 60
	mu   sync.Mutex
	q    []replyFrame
	head int
	wake chan struct{}
}

func newReplyQueue() *replyQueue {
	return &replyQueue{wake: make(chan struct{}, 1)}
}

func (r *replyQueue) push(f replyFrame) {
	r.mu.Lock()
	r.q = append(r.q, f)
	r.mu.Unlock()
	r.notify()
}

// notify nudges the writer loop (used by push, and by the reader when
// acks are owed after a socket drain).
func (r *replyQueue) notify() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *replyQueue) pop() (replyFrame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
		return replyFrame{}, false
	}
	f := r.q[r.head]
	r.q[r.head] = replyFrame{}
	r.head++
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
	} else if r.head >= 256 && r.head*2 >= len(r.q) {
		n := copy(r.q, r.q[r.head:])
		r.q = r.q[:n]
		r.head = 0
	}
	return f, true
}

// requeue returns popped frames to the FRONT of the queue in their
// original order: a flush that failed (or whose delivery is unknown
// after the connection was replaced mid-write) re-sends its replies on
// the next connection. Duplicate delivery is safe — acks are
// cumulative, nacks are idempotent at the receiver's window, and a
// re-delivered response resolves to a stale token at the initiator.
func (r *replyQueue) requeue(fs []replyFrame) {
	if len(fs) == 0 {
		return
	}
	r.mu.Lock()
	if r.head >= len(fs) {
		r.head -= len(fs)
		copy(r.q[r.head:], fs)
	} else {
		nq := make([]replyFrame, 0, len(fs)+len(r.q)-r.head)
		nq = append(nq, fs...)
		nq = append(nq, r.q[r.head:]...)
		r.q = nq
		r.head = 0
	}
	r.mu.Unlock()
	r.notify()
}

// winEntry is one outbound opWrite frame held in the send window. The
// frame bytes themselves are retained (not just the completion token)
// so a reconnect can replay everything the dead connection may have
// lost. seq is the signaled-write sequence number, 0 for unsignaled
// writes, which ride along for ordering but have no completion.
type winEntry struct {
	frame    []byte
	tok      uint64
	seq      uint64
	signaled bool
}

// sendWindow is the per-peer retransmit window: every opWrite frame in
// wire order, trimmed by the peer's cumulative acks. done tracks the
// highest signaled sequence resolved (acked or nacked), which makes
// both paths idempotent — a duplicated ack or a replayed nack after a
// reconnect is a no-op.
type sendWindow struct {
	//photon:lock tcpwin 50
	mu   sync.Mutex
	ents []winEntry
	head int
	done uint64 // highest signaled seq resolved
	next uint64 // last signaled seq assigned
}

// add appends a frame in wire order (called while building a flush,
// before the bytes hit the wire, so the peer's ack can never race it).
func (w *sendWindow) add(frame []byte, tok uint64, signaled bool) {
	w.mu.Lock()
	var seq uint64
	if signaled {
		w.next++
		seq = w.next
	}
	w.ents = append(w.ents, winEntry{frame: frame, tok: tok, seq: seq, signaled: signaled})
	w.mu.Unlock()
}

// ackTo resolves signaled writes 1..k: their tokens are appended to
// dst and every entry through the last covered signaled write leaves
// the window (the in-order stream delivered the unsignaled writes
// between them). k <= done is a no-op, so duplicate and handshake
// acks are safe.
func (w *sendWindow) ackTo(k uint64, dst []uint64) []uint64 {
	w.mu.Lock()
	if k <= w.done {
		w.mu.Unlock()
		return dst
	}
	cut := -1
	for i := w.head; i < len(w.ents); i++ {
		e := &w.ents[i]
		if e.seq != 0 {
			if e.seq > k {
				break
			}
			dst = append(dst, e.tok)
			cut = i
		}
	}
	if cut >= 0 {
		for i := w.head; i <= cut; i++ {
			w.ents[i] = winEntry{}
		}
		w.head = cut + 1
	}
	w.done = k
	w.compact()
	w.mu.Unlock()
	return dst
}

// takeNack resolves signaled write #seq as failed, returning its
// token. Unsignaled frames ahead of it were delivered by the stream
// and are dropped. A replayed nack (seq already resolved) is a no-op.
func (w *sendWindow) takeNack(seq uint64) (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq <= w.done {
		return 0, false
	}
	for w.head < len(w.ents) && w.ents[w.head].seq == 0 {
		w.ents[w.head] = winEntry{}
		w.head++
	}
	if w.head == len(w.ents) || w.ents[w.head].seq != seq {
		w.compact()
		return 0, false
	}
	tok := w.ents[w.head].tok
	w.ents[w.head] = winEntry{}
	w.head++
	w.done = seq
	w.compact()
	return tok, true
}

// pending snapshots the retained frames in wire order (retransmit
// after a reconnect).
func (w *sendWindow) pending(dst []winEntry) []winEntry {
	w.mu.Lock()
	dst = append(dst, w.ents[w.head:]...)
	w.mu.Unlock()
	return dst
}

// drainAll empties the window, returning the tokens of unresolved
// signaled writes (peer declared down: fail them all).
func (w *sendWindow) drainAll(dst []uint64) []uint64 {
	w.mu.Lock()
	for i := w.head; i < len(w.ents); i++ {
		if e := &w.ents[i]; e.signaled {
			dst = append(dst, e.tok)
			w.done = e.seq
		}
		w.ents[i] = winEntry{}
	}
	w.ents = w.ents[:0]
	w.head = 0
	w.mu.Unlock()
	return dst
}

// compact releases popped slots; caller holds w.mu.
func (w *sendWindow) compact() {
	if w.head == len(w.ents) {
		w.ents = w.ents[:0]
		w.head = 0
	} else if w.head >= 256 && w.head*2 >= len(w.ents) {
		n := copy(w.ents, w.ents[w.head:])
		w.ents = w.ents[:n]
		w.head = 0
	}
}

// safeStamp computes the cumulative ack a request or standalone-ack
// frame toward peer may carry. The plain answer is recvSeqW (signaled
// writes applied from peer), but a stamp must never overtake a queued
// nack: if write #k failed, a data frame stamped >= k that passes the
// nack on the wire would complete #k as OK at the initiator. The
// writer passes the highest nack seq it has already drained into a
// flush; while any nack is still queued we fall back to that drained
// bound (under-acking is always safe — the real stamp follows once the
// nack drains).
//
// Load order matters: recvSeqW first, then lastNack. The reader
// advances them in the opposite order (push nack, store lastNack,
// then advance recvSeqW), so a stamp that sees the new recvSeqW is
// guaranteed to also see the nack that precedes it.
func (b *Backend) safeStamp(peer int, drainedNack uint64) uint64 {
	applied := b.recvSeqW[peer].Load()
	if ln := b.lastNack[peer].Load(); ln != drainedNack {
		return drainedNack
	}
	return applied
}

// writerState is the cross-connection writer context: drainedNack and
// a popped-but-unwritten request item both survive a reconnect (the
// item must go out, in order, on the next connection).
type writerState struct {
	drainedNack uint64
	pending     outItem
	hasPending  bool
}

// writer owns a peer's outbound side for the life of the backend: it
// waits for a connection, replays the unacknowledged window after a
// reconnect, and runs the gather/flush loop until the connection dies
// or is replaced. A peer declared down turns the writer into a drain
// that fails whatever is still queued toward it. For the self rank it
// applies requests locally instead.
func (b *Backend) writer(peer int) {
	defer b.sendWG.Done()
	if peer == b.rank {
		b.loopbackWriter()
		return
	}
	var (
		lk   = b.links[peer]
		rq   = b.replyQueueFor(peer)
		win  = b.windows[peer]
		ws   writerState
		retx []winEntry
	)
	for {
		conn, gen, needRetx, conveyed, ok := lk.awaitConn(b)
		if !ok {
			if lk.down.Load() && !b.isClosed() {
				b.drainDown(peer, lk, rq, &ws)
			}
			return
		}
		if needRetx {
			retx = win.pending(retx[:0])
			if len(retx) > 0 && !b.retransmit(conn, peer, gen, retx) {
				continue
			}
		}
		if !b.writeLoop(peer, lk, conn, gen, rq, win, conveyed, &ws) {
			return
		}
	}
}

// retransmit replays the unacknowledged window after a reconnect, in
// original wire order, stamped 0 ("no ack information") so a replayed
// frame can never overtake a queued nack. Unsignaled writes may be
// re-applied at the peer — raw memory writes are idempotent — while
// signaled writes were trimmed to the peer's reported applied count at
// install, so each is applied exactly once.
func (b *Backend) retransmit(conn net.Conn, peer int, gen uint64, ents []winEntry) bool {
	st := &b.cstats[peer]
	flushCap := b.cfg.FlushBytes
	flush := make([]byte, 0, flushCap+frameHdrLen)
	frames := 0
	emit := func() bool {
		if len(flush) == 0 {
			return true
		}
		n := len(flush)
		if _, err := conn.Write(flush); err != nil {
			b.lostConn(peer, gen, err)
			return false
		}
		st.flushes.Add(1)
		st.framesOut.Add(int64(frames))
		st.bytesOut.Add(int64(n))
		flush = flush[:0]
		frames = 0
		return true
	}
	for i := range ents {
		e := &ents[i]
		var hdr [frameHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(e.frame)))
		flush = append(flush, hdr[:]...)
		flush = append(flush, e.frame...)
		frames++
		st.retxFrames.Add(1)
		if len(flush) >= flushCap {
			if !emit() {
				return false
			}
		}
	}
	if !emit() {
		return false
	}
	b.links[peer].lastTx.Store(nowNano())
	return true
}

// writeLoop drains a peer's request channel and reply queue into a
// gather buffer and flushes it with one Write: a burst of frames costs
// one syscall instead of one each. It flushes immediately when the
// queues run dry — latency never waits on a timer — and keeps filling
// up to FlushBytes while more work is queued. It returns false when
// the backend closed (the writer exits) and true when the connection
// died or was replaced (the writer re-enters awaitConn).
func (b *Backend) writeLoop(peer int, lk *link, conn net.Conn, gen uint64, rq *replyQueue, win *sendWindow, conveyed uint64, ws *writerState) bool {
	var (
		st       = &b.cstats[peer]
		flushCap = b.cfg.FlushBytes
		flush    = make([]byte, 0, flushCap+frameHdrLen)
		maxStamp uint64
		respToks []uint64
		popped   []replyFrame // replies in the flush being built (requeued on loss)
	)

	appendFrame := func(body []byte, stamp uint64) {
		var hdr [frameHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
		binary.LittleEndian.PutUint64(hdr[4:], stamp)
		flush = append(flush, hdr[:]...)
		flush = append(flush, body...)
		if stamp > maxStamp {
			maxStamp = stamp
		}
	}
	// appendReq stages one request frame: every opWrite enters the send
	// window (before the flush is written, so the peer's ack can never
	// beat the append); response-keyed ops are remembered so a dead
	// connection can fail them (they are never replayed).
	appendReq := func(f outFrame, stamp uint64) {
		if len(f.data) > 0 && f.data[0] == opWrite {
			win.add(f.data, f.token, f.signaled)
		} else if f.signaled {
			respToks = append(respToks, f.token)
		}
		appendFrame(f.data, stamp)
	}

	for {
		if lk.genA.Load() != gen {
			return true // replaced: the new connection's retransmit covers the window
		}
		frames, reqFrames := 0, 0
		soloAck := false
		maxStamp = 0
		popped = popped[:0]
		// Replies first: they unblock the peer, and FIFO order keeps a
		// nack ahead of any later response whose stamp covers it.
		for len(flush) < flushCap {
			rf, ok := rq.pop()
			if !ok {
				break
			}
			if rf.nackSeq > ws.drainedNack {
				ws.drainedNack = rf.nackSeq
			}
			popped = append(popped, rf)
			appendFrame(rf.data, rf.stamp)
			frames++
		}
		// One stamp covers every request frame in this flush.
		stamp := b.safeStamp(peer, ws.drainedNack)
		for len(flush) < flushCap {
			var it outItem
			if ws.hasPending {
				it, ws.hasPending = ws.pending, false
				ws.pending = outItem{}
			} else {
				select {
				case it = <-b.outs[peer]:
				default:
				}
				if it.many == nil && it.one.data == nil {
					break
				}
			}
			if it.many != nil {
				for _, f := range it.many {
					appendReq(f, stamp)
					frames++
					reqFrames++
				}
			} else {
				appendReq(it.one, stamp)
				frames++
				reqFrames++
			}
		}
		if reqFrames > 0 && stamp > maxStamp {
			maxStamp = stamp
		}
		// Standalone cumulative ack: the peer is owed acks and no
		// frame above carries the fresh stamp (12 bytes, piggybacked
		// on the same syscall when replies are flushing anyway).
		if stamp > conveyed && stamp > maxStamp && reqFrames == 0 {
			appendFrame(nil, stamp)
			frames++
			soloAck = true
			st.ackFrames.Add(1)
		}
		if frames == 0 {
			// Idle: flush buffer is empty; block until work arrives.
			select {
			case <-b.closed:
				return false
			case <-lk.reconn: // conn replaced or link down
				continue
			case <-rq.wake:
			case it := <-b.outs[peer]:
				ws.pending, ws.hasPending = it, true
			}
			continue
		}
		if maxStamp > conveyed {
			adv := maxStamp - conveyed
			if soloAck && frames == 1 {
				st.acksSolo.Add(int64(adv))
			} else {
				st.acksPiggy.Add(int64(adv))
			}
			conveyed = maxStamp
		}
		if len(respToks) > 0 {
			// Registered before the Write: if the flush fails (or its
			// delivery is unknown), these non-idempotent ops must fail.
			b.markSentResp(peer, respToks)
			respToks = respToks[:0]
		}
		n := len(flush)
		if _, err := conn.Write(flush); err != nil {
			rq.requeue(popped)
			b.lostConn(peer, gen, fmt.Errorf("tcp: connection to rank %d lost: %w", peer, err))
			return true
		}
		lk.lastTx.Store(nowNano())
		if lk.genA.Load() != gen {
			// Replaced mid-write: delivery of this flush is unknown.
			// Window frames are covered by the new connection's
			// retransmit; replies are re-sent (duplicates are safe).
			rq.requeue(popped)
			return true
		}
		st.flushes.Add(1)
		st.framesOut.Add(int64(frames))
		st.bytesOut.Add(int64(n))
		flush = flush[:0]
		// An oversized frame (rendezvous payload beyond the cap) may
		// have grown the buffer; don't pin that memory forever.
		if cap(flush) > 4*(flushCap+frameHdrLen) {
			flush = make([]byte, 0, flushCap+frameHdrLen)
		}
	}
}

// drainDown is the writer's terminal mode for a down peer: keep
// consuming the request channel (so posters racing the down latch
// never wedge) and fail everything with the peer's down error.
func (b *Backend) drainDown(peer int, lk *link, rq *replyQueue, ws *writerState) {
	lk.mu.Lock()
	err := lk.downErr
	lk.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("tcp: rank %d: %w", peer, core.ErrPeerDown)
	}
	if ws.hasPending {
		b.failItem(ws.pending, err)
		ws.pending, ws.hasPending = outItem{}, false
	}
	for {
		for {
			if _, ok := rq.pop(); !ok {
				break
			}
		}
		select {
		case <-b.closed:
			return
		case it := <-b.outs[peer]:
			b.failItem(it, err)
		case <-rq.wake:
		}
	}
}

// failItem fails the completion-bearing frames of one queued item that
// will never reach the wire.
func (b *Backend) failItem(it outItem, err error) {
	fail1 := func(f outFrame) {
		if !f.signaled || len(f.data) == 0 {
			return
		}
		if f.data[0] != opWrite {
			// Response-keyed: release the parked result buffer.
			b.pendMu.Lock()
			_, ok := b.pendBuf[f.token]
			delete(b.pendBuf, f.token)
			b.pendMu.Unlock()
			if !ok {
				return // already failed via failPend
			}
		}
		b.pushComp(core.BackendCompletion{Token: f.token, OK: false, Err: err})
	}
	if it.many != nil {
		for _, f := range it.many {
			fail1(f)
		}
	} else {
		fail1(it.one)
	}
}

// loopbackWriter applies self-rank requests directly: no wire, no seq
// accounting — signaled writes complete inline in handleFrame.
func (b *Backend) loopbackWriter() {
	for {
		select {
		case <-b.closed:
			return
		case it := <-b.outs[b.rank]:
			if it.many != nil {
				for _, f := range it.many {
					b.handleFrame(b.rank, f.data)
				}
			} else {
				b.handleFrame(b.rank, it.one.data)
			}
		}
	}
}

// replyQueueFor returns (building lazily) the reply queue toward peer.
func (b *Backend) replyQueueFor(peer int) *replyQueue {
	b.outMu.Lock()
	defer b.outMu.Unlock()
	if b.replyQs == nil {
		b.replyQs = make([]*replyQueue, b.size)
	}
	if b.replyQs[peer] == nil {
		b.replyQs[peer] = newReplyQueue()
	}
	return b.replyQs[peer]
}

// countingConn wraps a connection to count read syscalls and bytes.
type countingConn struct {
	net.Conn
	calls, bytes *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.calls.Add(1)
	c.bytes.Add(int64(n))
	return n, err
}

// reader runs one connection generation's receive side and, when the
// stream dies, reports the loss (after readerDone closes — the
// recovery path waits on it so the applied-write count is final
// before any new handshake).
func (b *Backend) reader(peer int, conn net.Conn, gen uint64, done chan struct{}) {
	err := b.readLoop(peer, conn)
	close(done)
	b.lostConn(peer, gen, err)
}

// readLoop consumes frames arriving from peer through a buffered
// reader sized to the peer's flush cap, so a coalesced flush is pulled
// from the kernel in one syscall and then parsed from memory. Each
// frame's header cumAck is processed before its body (the ack covers
// writes that precede this frame on the peer's stream). When the
// socket drains with signaled writes applied since the last flush, the
// reader nudges the writer so a standalone cumulative ack goes out —
// one ack frame per drained burst, not per op.
func (b *Backend) readLoop(peer int, conn net.Conn) error {
	st := &b.cstats[peer]
	lk := b.links[peer]
	br := bufio.NewReaderSize(&countingConn{Conn: conn, calls: &st.readCalls, bytes: &st.bytesIn}, b.cfg.FlushBytes)
	rq := b.replyQueueFor(peer)
	var (
		hdr     [frameHdrLen]byte
		body    []byte
		scratch []uint64
		ackOwed bool
	)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return err
		}
		if b.hbNS.Load() != 0 {
			lk.lastRx.Store(nowNano())
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n > maxFrameLen {
			return fmt.Errorf("tcp: absurd frame length %d from rank %d", n, peer)
		}
		if cum := binary.LittleEndian.Uint64(hdr[4:]); cum > 0 {
			scratch = b.applyCumAck(peer, cum, scratch[:0])
		}
		st.framesIn.Add(1)
		if n > 0 {
			// The body buffer is reused across frames: handleFrame
			// copies anything it keeps (payloads into registrations,
			// responses into pending buffers, exchange blobs).
			if cap(body) < int(n) {
				body = make([]byte, n)
			}
			f := body[:n]
			if _, err := io.ReadFull(br, f); err != nil {
				return err
			}
			if b.handleFrame(peer, f) {
				ackOwed = true
			}
		}
		if ackOwed && br.Buffered() == 0 {
			ackOwed = false
			rq.notify()
		}
	}
}

// applyCumAck completes signaled writes 1..k toward peer, in order.
func (b *Backend) applyCumAck(peer int, k uint64, scratch []uint64) []uint64 {
	scratch = b.windows[peer].ackTo(k, scratch)
	for _, tok := range scratch {
		b.pushComp(core.BackendCompletion{Token: tok, OK: true})
	}
	if len(scratch) > 0 {
		b.cstats[peer].signaledAcked.Add(int64(len(scratch)))
	}
	return scratch
}

// applyNack completes writes 1..seq-1 as OK and write #seq with an
// error. The nack's own header stamp is seq-1, and reply-queue FIFO
// order guarantees no later stamp covering seq was processed first.
// Both steps are idempotent, so a nack replayed across a reconnect is
// a no-op.
func (b *Backend) applyNack(peer int, seq uint64, scratch []uint64) []uint64 {
	scratch = b.applyCumAck(peer, seq-1, scratch)
	if tok, ok := b.windows[peer].takeNack(seq); ok {
		b.pushComp(core.BackendCompletion{Token: tok, OK: false, Err: fmt.Errorf("tcp: remote write failed")})
	}
	return scratch
}

// Fixed-part body lengths checked by handleFrame before field
// extraction; a frame shorter than its opcode's fixed part is corrupt
// and dropped. Encoders build bodies to the same layouts.
const (
	writeBodyMin      = 26 // op1 | token8 | sig1 | raddr8 | rkey4 | n4; payload follows
	nackBodyMin       = 9  // op1 | seq8
	readRespBodyMin   = 10 // op1 | token8 | failed1; payload follows
	atomicRespBodyLen = 18 // op1 | token8 | failed1 | value8
	fAddBodyMin       = 29 // op1 | token8 | raddr8 | rkey4 | operand8
	cSwapBodyMin      = 37 // fAddBodyMin + swap8
)

// handleFrame dispatches one inbound frame body (requests are applied
// against local memory; responses complete pending tokens). It returns
// true when a signaled write from a remote peer was applied, i.e. the
// peer is owed a cumulative ack. The frame buffer is only valid during
// the call: anything retained must be copied.
func (b *Backend) handleFrame(peer int, f []byte) bool {
	if len(f) < 1 {
		return false
	}
	switch f[0] {
	case opWrite:
		if len(f) < writeBodyMin {
			return false
		}
		token := binary.LittleEndian.Uint64(f[1:])
		signaled := f[9] == 1
		raddr := binary.LittleEndian.Uint64(f[10:])
		rkey := binary.LittleEndian.Uint32(f[18:])
		n := int(binary.LittleEndian.Uint32(f[22:]))
		payload := f[26:]
		if n > len(payload) {
			n = len(payload)
		}
		b.memMu.Lock()
		reg, err := b.lookup(rkey, raddr, n)
		if err == nil {
			copy(reg.buf[raddr-reg.base:], payload[:n])
		}
		b.memMu.Unlock()
		if err == nil {
			b.writeAct.Add(1)
			b.kick()
		}
		if !signaled {
			return false
		}
		if peer == b.rank {
			// Loopback: no wire, complete inline.
			var cerr error
			if err != nil {
				cerr = fmt.Errorf("tcp: remote write failed")
			}
			b.pushComp(core.BackendCompletion{Token: token, OK: err == nil, Err: cerr})
			return false
		}
		// Advance the applied-signaled-write count. On failure the
		// explicit nack is queued first and lastNack recorded before
		// recvSeqW advances — safeStamp's load order relies on this.
		seq := b.recvSeqW[peer].Load() + 1
		if err != nil {
			nack := make([]byte, 9)
			nack[0] = opNack
			binary.LittleEndian.PutUint64(nack[1:], seq)
			b.lastNack[peer].Store(seq)
			b.replyQueueFor(peer).push(replyFrame{data: nack, stamp: seq - 1, nackSeq: seq})
			b.cstats[peer].nacksSent.Add(1)
		}
		b.recvSeqW[peer].Store(seq)
		return true
	case opRead:
		if len(f) < 25 {
			return false
		}
		token := binary.LittleEndian.Uint64(f[1:])
		raddr := binary.LittleEndian.Uint64(f[9:])
		rkey := binary.LittleEndian.Uint32(f[17:])
		n := int(binary.LittleEndian.Uint32(f[21:]))
		resp := make([]byte, 1+8+1+n)
		resp[0] = opReadResp
		binary.LittleEndian.PutUint64(resp[1:], token)
		b.memMu.RLock()
		reg, err := b.lookup(rkey, raddr, n)
		if err == nil {
			copy(resp[10:], reg.buf[raddr-reg.base:raddr-reg.base+uint64(n)])
		}
		b.memMu.RUnlock()
		if err != nil {
			resp = resp[:10]
			resp[9] = 1 // status: failed
		}
		b.reply(peer, resp)
	case opFAdd, opCSwap:
		b.handleAtomic(peer, f)
	case opNack:
		if len(f) < nackBodyMin || peer == b.rank {
			return false
		}
		b.applyNack(peer, binary.LittleEndian.Uint64(f[1:]), nil)
	case opReadResp:
		if len(f) < readRespBodyMin {
			return false
		}
		token := binary.LittleEndian.Uint64(f[1:])
		failed := f[9] == 1
		dst, ok := b.takePend(peer, token)
		if !ok {
			return false // already failed (link reset); drop the late response
		}
		if !failed && dst != nil {
			copy(dst, f[10:])
		}
		var err error
		if failed {
			err = fmt.Errorf("tcp: remote read failed")
		}
		b.pushComp(core.BackendCompletion{Token: token, OK: !failed, Err: err})
	case opAtomicResp:
		if len(f) < atomicRespBodyLen {
			return false
		}
		token := binary.LittleEndian.Uint64(f[1:])
		failed := f[9] == 1
		dst, ok := b.takePend(peer, token)
		if !ok {
			return false
		}
		if !failed && dst != nil {
			copy(dst, f[10:18])
		}
		var err error
		if failed {
			err = fmt.Errorf("tcp: remote atomic failed")
		}
		b.pushComp(core.BackendCompletion{Token: token, OK: !failed, Err: err})
	case opExg:
		b.handleExg(peer, f[1:])
	case opExgResp:
		b.handleExgResp(f[1:])
	case opHeartbeat:
		// Liveness probe: the header read already refreshed lastRx, and
		// its stamp (processed above) doubled as a cumulative ack. A v4
		// body also carries clock-sync timestamps (legacy 1-byte bodies
		// are bare probes).
		if len(f) >= hbBodyLen && peer != b.rank {
			b.handleHeartbeatSync(peer, f)
		}
		return false
	}
	return false
}

// takePend claims a parked response buffer, clearing the sent-tracking
// entry. ok is false when the op was already failed by the recovery
// path (the response raced the link teardown).
func (b *Backend) takePend(peer int, token uint64) ([]byte, bool) {
	b.pendMu.Lock()
	defer b.pendMu.Unlock()
	pd, ok := b.pendBuf[token]
	if !ok {
		return nil, false
	}
	delete(b.pendBuf, token)
	if sr := b.sentResp[peer]; sr != nil {
		delete(sr, token)
	}
	return pd.buf, true
}

func (b *Backend) handleAtomic(peer int, f []byte) {
	if len(f) < fAddBodyMin {
		return
	}
	token := binary.LittleEndian.Uint64(f[1:])
	raddr := binary.LittleEndian.Uint64(f[9:])
	rkey := binary.LittleEndian.Uint32(f[17:])
	operand := binary.LittleEndian.Uint64(f[21:])
	var swap uint64
	if f[0] == opCSwap {
		if len(f) < cSwapBodyMin {
			return
		}
		swap = binary.LittleEndian.Uint64(f[29:])
	}
	resp := make([]byte, 1+8+1+8)
	resp[0] = opAtomicResp
	binary.LittleEndian.PutUint64(resp[1:], token)
	b.memMu.Lock()
	reg, err := b.lookup(rkey, raddr, 8)
	if err == nil && raddr%8 != 0 {
		err = fmt.Errorf("tcp: misaligned atomic")
	}
	if err == nil {
		off := raddr - reg.base
		orig := binary.LittleEndian.Uint64(reg.buf[off:])
		switch f[0] {
		case opFAdd:
			binary.LittleEndian.PutUint64(reg.buf[off:], orig+operand)
		case opCSwap:
			if orig == operand {
				binary.LittleEndian.PutUint64(reg.buf[off:], swap)
			}
		}
		binary.LittleEndian.PutUint64(resp[10:], orig)
	}
	b.memMu.Unlock()
	if err != nil {
		resp[9] = 1
	} else {
		b.writeAct.Add(1)
		b.kick()
	}
	b.reply(peer, resp)
}

// reply routes a response frame back to peer (loopback applies
// directly). Remote responses are stamped with the applied-write count
// at push time, so they double as cumulative acks for every write that
// preceded the answered operation.
func (b *Backend) reply(peer int, f []byte) {
	if peer == b.rank {
		b.handleFrame(peer, f)
		return
	}
	b.replyQueueFor(peer).push(replyFrame{data: f, stamp: b.recvSeqW[peer].Load()})
}

// ---------------------------------------------------------------------
// Bootstrap exchange: star over rank 0.
// ---------------------------------------------------------------------

// Exchange implements the collective allgather.
func (b *Backend) Exchange(local []byte) ([][]byte, error) {
	if b.size == 1 {
		return [][]byte{append([]byte(nil), local...)}, nil
	}
	if b.rank == 0 {
		return b.exchangeRoot(local)
	}
	// Ship the blob to the root (blocking enqueue: exchange is a
	// collective, so waiting is correct).
	f := make([]byte, 1+4+len(local))
	f[0] = opExg
	binary.LittleEndian.PutUint32(f[1:], uint32(len(local)))
	copy(f[5:], local)
	select {
	case b.outs[0] <- outItem{one: outFrame{data: f}}:
	case <-b.closed:
		return nil, core.ErrClosed
	}
	// Wait for the root's broadcast.
	b.exgMu.Lock()
	defer b.exgMu.Unlock()
	for len(b.exgResp) == 0 {
		if b.isClosed() {
			return nil, core.ErrClosed
		}
		b.exgCond.Wait()
	}
	out := b.exgResp[0]
	b.exgResp = b.exgResp[1:]
	return out, nil
}

func (b *Backend) exchangeRoot(local []byte) ([][]byte, error) {
	b.exgMu.Lock()
	b.exgSelf = append(b.exgSelf, append([]byte(nil), local...))
	// Wait until one blob from every peer (and self) is queued.
	for {
		if b.isClosed() {
			b.exgMu.Unlock()
			return nil, core.ErrClosed
		}
		ready := len(b.exgSelf) > 0
		for r := 1; r < b.size; r++ {
			if len(b.exgGather[r]) == 0 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		b.exgCond.Wait()
	}
	out := make([][]byte, b.size)
	out[0] = b.exgSelf[0]
	b.exgSelf = b.exgSelf[1:]
	for r := 1; r < b.size; r++ {
		out[r] = b.exgGather[r][0]
		b.exgGather[r] = b.exgGather[r][1:]
	}
	b.exgMu.Unlock()
	// Broadcast the result.
	resp := encodeExgResp(out)
	for r := 1; r < b.size; r++ {
		select {
		case b.outs[r] <- outItem{one: outFrame{data: resp}}:
		case <-b.closed:
			return nil, core.ErrClosed
		}
	}
	return out, nil
}

// handleExg queues a gathered blob at the root.
func (b *Backend) handleExg(peer int, body []byte) {
	if len(body) < 4 {
		return
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > len(body)-4 {
		n = len(body) - 4
	}
	blob := append([]byte(nil), body[4:4+n]...)
	b.exgMu.Lock()
	b.exgGather[peer] = append(b.exgGather[peer], blob)
	b.exgCond.Broadcast()
	b.exgMu.Unlock()
}

// handleExgResp delivers the root's broadcast to the local waiter.
func (b *Backend) handleExgResp(body []byte) {
	out, err := decodeExgResp(body)
	if err != nil {
		return
	}
	b.exgMu.Lock()
	b.exgResp = append(b.exgResp, out)
	b.exgCond.Broadcast()
	b.exgMu.Unlock()
}

func encodeExgResp(blobs [][]byte) []byte {
	total := 1 + 4
	for _, b := range blobs {
		total += 4 + len(b)
	}
	f := make([]byte, total)
	f[0] = opExgResp
	binary.LittleEndian.PutUint32(f[1:], uint32(len(blobs)))
	off := 5
	for _, blob := range blobs {
		binary.LittleEndian.PutUint32(f[off:], uint32(len(blob)))
		off += 4
		copy(f[off:], blob)
		off += len(blob)
	}
	return f
}

func decodeExgResp(body []byte) ([][]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("tcp: short exchange response")
	}
	count := int(binary.LittleEndian.Uint32(body))
	out := make([][]byte, 0, count)
	off := 4
	for i := 0; i < count; i++ {
		if off+4 > len(body) {
			return nil, fmt.Errorf("tcp: truncated exchange response")
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+n > len(body) {
			return nil, fmt.Errorf("tcp: truncated exchange blob")
		}
		out = append(out, append([]byte(nil), body[off:off+n]...))
		off += n
	}
	return out, nil
}
