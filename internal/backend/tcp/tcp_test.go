package tcp_test

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"photon/internal/backend/tcp"
	"photon/internal/core"
	"photon/internal/mem"
)

const waitT = 10 * time.Second

// newTCPJob boots n Photon ranks over loopback TCP in one process.
func newTCPJob(t *testing.T, n int, cfg core.Config) []*core.Photon {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	bes := make([]*tcp.Backend, n)
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			be, err := tcp.New(tcp.Config{Rank: r, Addrs: addrs, Listener: lns[r]})
			if err != nil {
				errs[r] = err
				return
			}
			bes[r] = be
			phs[r], errs[r] = core.Init(be, cfg)
		}(r)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, p := range phs {
			if p != nil {
				p.Close()
			}
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return phs
}

func TestTCPBackendConfigValidation(t *testing.T) {
	if _, err := tcp.New(tcp.Config{Rank: 0}); err == nil {
		t.Fatal("empty address book accepted")
	}
	if _, err := tcp.New(tcp.Config{Rank: 5, Addrs: []string{"x"}}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestTCPSingleRankLoopback(t *testing.T) {
	phs := newTCPJob(t, 1, core.Config{})
	if err := phs[0].Send(0, []byte("loop"), 1, 2); err != nil {
		t.Fatal(err)
	}
	rc, err := phs[0].WaitRemote(2, waitT)
	if err != nil || string(rc.Data) != "loop" {
		t.Fatalf("loopback over tcp: %v %q", err, rc.Data)
	}
}

func TestTCPPutWithCompletion(t *testing.T) {
	phs := newTCPJob(t, 2, core.Config{})
	target := make([]byte, 128)
	rb, lk, err := phs[1].RegisterBuffer(target)
	if err != nil {
		t.Fatal(err)
	}
	descs := shareDesc(t, phs, 1, rb)
	payload := []byte("photon over real sockets")
	if err := phs[0].PutWithCompletion(1, payload, descs[1], 8, 10, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(10, waitT); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(20, waitT); err != nil {
		t.Fatal(err)
	}
	lk.Lock()
	ok := bytes.Equal(target[8:8+len(payload)], payload)
	lk.Unlock()
	if !ok {
		t.Fatal("put data not visible")
	}
}

func shareDesc(t *testing.T, phs []*core.Photon, owner int, rb mem.RemoteBuffer) []mem.RemoteBuffer {
	t.Helper()
	out := make([][]mem.RemoteBuffer, len(phs))
	var wg sync.WaitGroup
	for r := range phs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			contrib := mem.RemoteBuffer{}
			if r == owner {
				contrib = rb
			}
			out[r], _ = phs[r].ExchangeBuffers(contrib)
		}(r)
	}
	wg.Wait()
	return out[0]
}

func TestTCPGetAndAtomics(t *testing.T) {
	phs := newTCPJob(t, 2, core.Config{})
	src := make([]byte, 64)
	copy(src, "tcp get payload")
	rb, _, err := phs[1].RegisterBuffer(src)
	if err != nil {
		t.Fatal(err)
	}
	descs := shareDesc(t, phs, 1, rb)
	dst := make([]byte, 15)
	if err := phs[0].GetWithCompletion(1, dst, descs[1], 0, 30, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(30, waitT); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "tcp get payload" {
		t.Fatalf("get = %q", dst)
	}
	// Fetch-add against offset 32 (8-aligned).
	if err := phs[0].FetchAdd(1, descs[1], 32, 9, 31); err != nil {
		t.Fatal(err)
	}
	lc, err := phs[0].WaitLocal(31, waitT)
	if err != nil || lc.Value != 0 {
		t.Fatalf("fadd: %v value=%d", err, lc.Value)
	}
	if err := phs[0].CompSwap(1, descs[1], 32, 9, 100, 32); err != nil {
		t.Fatal(err)
	}
	lc, err = phs[0].WaitLocal(32, waitT)
	if err != nil || lc.Value != 9 {
		t.Fatalf("cswap: %v value=%d", err, lc.Value)
	}
}

func TestTCPRendezvousLargeMessage(t *testing.T) {
	phs := newTCPJob(t, 2, core.Config{})
	big := make([]byte, 256*1024)
	for i := range big {
		big[i] = byte(i * 3)
	}
	if err := phs[0].Send(1, big, 40, 50); err != nil {
		t.Fatal(err)
	}
	var rc core.Completion
	var rerr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rc, rerr = phs[1].WaitRemote(50, waitT)
	}()
	if _, err := phs[0].WaitLocal(40, waitT); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil || !bytes.Equal(rc.Data, big) {
		t.Fatalf("rendezvous over tcp: %v (len %d)", rerr, len(rc.Data))
	}
}

func TestTCPThreeRanks(t *testing.T) {
	phs := newTCPJob(t, 3, core.Config{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := (r + 1) % 3
			for k := 0; k < 10; k++ {
				rid := uint64(r*100 + k + 1)
				if err := phs[r].SendBlocking(dst, []byte{byte(r), byte(k)}, 0, rid); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := (r + 2) % 3
			for k := 0; k < 10; k++ {
				rc, err := phs[r].WaitRemote(uint64(src*100+k+1), waitT)
				if err != nil || rc.Data[1] != byte(k) {
					t.Errorf("rank %d recv %d: %v %+v", r, k, err, rc)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestTCPRepeatedExchanges(t *testing.T) {
	phs := newTCPJob(t, 3, core.Config{})
	for iter := 0; iter < 5; iter++ {
		var wg sync.WaitGroup
		outs := make([][][]byte, 3)
		errs := make([]error, 3)
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				outs[r], errs[r] = phs[r].Exchange([]byte{byte(iter), byte(r)})
			}(r)
		}
		wg.Wait()
		for r := 0; r < 3; r++ {
			if errs[r] != nil {
				t.Fatalf("iter %d rank %d: %v", iter, r, errs[r])
			}
			for src := 0; src < 3; src++ {
				if outs[r][src][0] != byte(iter) || outs[r][src][1] != byte(src) {
					t.Fatalf("iter %d rank %d: blob[%d]=%v", iter, r, src, outs[r][src])
				}
			}
		}
	}
}

func TestTCPDialFailure(t *testing.T) {
	// One rank alone with a peer that never appears.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = tcp.New(tcp.Config{
		Rank:        0,
		Addrs:       []string{ln.Addr().String(), "127.0.0.1:1"}, // port 1: connection refused
		Listener:    ln,
		DialTimeout: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dial to dead peer succeeded")
	}
}
