// Package tcp is Photon's sockets backend: the same core.Backend
// contract as the simulated-verbs backend, but over real TCP
// connections, so a Photon job can span OS processes (or just exercise
// a second transport, reproducing the original's backend-portability
// claim: verbs / uGNI / libfabric / sockets behind one middleware).
//
// One-sided semantics are emulated the way Photon's TCP and UD backends
// emulate them: each rank runs an agent loop per connection that
// applies WRITE/READ/ATOMIC requests directly against the local
// registration table and acknowledges signaled operations. Per
// connection, TCP's in-order bytestream plays the role of the RC queue
// pair: requests apply in posting order, and an ACK for operation k
// implies operations 1..k-1 have been applied.
//
// Bootstrap exchange is a star over rank 0: every rank ships its blob
// to the root, which gathers and rebroadcasts. Connections form a full
// mesh at New time from a caller-supplied address book (the moral
// equivalent of a launcher's hostfile).
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/core"
	"photon/internal/mem"
	"photon/internal/trace"
)

// Errors specific to the TCP backend.
var (
	ErrBadAddress = errors.New("tcp: bad address configuration")
	ErrHandshake  = errors.New("tcp: peer handshake failed")
)

// Config describes one rank of a TCP job.
type Config struct {
	// Rank of this process; Addrs[Rank] must be a listenable address.
	Rank int
	// Addrs is the full address book, indexed by rank.
	Addrs []string
	// DialTimeout bounds connection setup (default 10s).
	DialTimeout time.Duration
	// SendDepth bounds queued outbound requests per peer (default 1024);
	// a full queue surfaces as ErrWouldBlock, like a full send queue.
	SendDepth int
	// Listener optionally supplies a pre-bound listener for this rank
	// (port-0 setups and tests); when set, Addrs[Rank] is only used by
	// peers to reach it.
	Listener net.Listener
}

func (c *Config) setDefaults() error {
	if len(c.Addrs) == 0 || c.Rank < 0 || c.Rank >= len(c.Addrs) {
		return ErrBadAddress
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.SendDepth <= 0 {
		c.SendDepth = 1024
	}
	return nil
}

// Wire opcodes.
const (
	opWrite      = 1
	opRead       = 2
	opFAdd       = 3
	opCSwap      = 4
	opAck        = 5
	opReadResp   = 6
	opAtomicResp = 7
	opExg        = 8
	opExgResp    = 9
)

// registration is one pinned buffer.
type registration struct {
	buf  []byte
	base uint64
	rkey uint32
}

// outFrame is one queued outbound request.
type outFrame struct {
	data []byte
	// completion bookkeeping for requests that expect a response
	token    uint64
	signaled bool
}

// Backend is one rank's TCP transport endpoint.
type Backend struct {
	cfg  Config
	rank int
	size int

	ln    net.Listener
	conns []net.Conn // nil at self rank

	outMu   sync.Mutex
	outs    []chan outFrame // per peer; self uses loopback dispatch
	replyQs []*replyQueue   // per peer, lazily created
	sendWG  sync.WaitGroup

	memMu    sync.RWMutex  // guards all registered memory (the "DMA lock")
	writeAct atomic.Uint64 // bumped after every applied remote write/atomic
	regs     map[uint32]*registration
	nextRKey uint32
	nextBase uint64

	compMu sync.Mutex
	comps  []core.BackendCompletion

	// pending read/atomic result buffers keyed by token.
	pendMu  sync.Mutex
	pendBuf map[uint64][]byte

	// exchange state.
	exgMu     sync.Mutex
	exgCond   *sync.Cond
	exgResp   [][][]byte       // queue of completed exchanges (non-root waits here)
	exgGather map[int][][]byte // root: per-rank queues of received blobs
	exgSelf   [][]byte         // root: own blobs queued per generation

	closed  chan struct{}
	closeMu sync.Mutex
	done    bool
}

var (
	_ core.Backend      = (*Backend)(nil)
	_ core.BatchBackend = (*Backend)(nil)
)

// New builds the endpoint: it listens, forms the full mesh (lower rank
// dials higher rank), and starts the agent loops. New is collective
// across the job.
func New(cfg Config) (*Backend, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	b := &Backend{
		cfg:       cfg,
		rank:      cfg.Rank,
		size:      len(cfg.Addrs),
		conns:     make([]net.Conn, len(cfg.Addrs)),
		outs:      make([]chan outFrame, len(cfg.Addrs)),
		regs:      make(map[uint32]*registration),
		nextRKey:  1,
		nextBase:  0x1000,
		pendBuf:   make(map[uint64][]byte),
		exgGather: make(map[int][][]byte),
		closed:    make(chan struct{}),
	}
	b.exgCond = sync.NewCond(&b.exgMu)

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Addrs[cfg.Rank], err)
		}
	}
	b.ln = ln

	// Accept from lower ranks, dial higher ranks, in parallel.
	var wg sync.WaitGroup
	var connErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if connErr == nil {
			connErr = err
		}
		errMu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < b.rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				setErr(err)
				return
			}
			// Handshake: dialer announces its rank.
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				setErr(fmt.Errorf("%w: %v", ErrHandshake, err))
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer < 0 || peer >= b.rank {
				setErr(fmt.Errorf("%w: rank %d dialed into slot for lower ranks", ErrHandshake, peer))
				return
			}
			b.conns[peer] = conn
		}
	}()
	for peer := b.rank + 1; peer < b.size; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			deadline := time.Now().Add(cfg.DialTimeout)
			for {
				conn, err := net.DialTimeout("tcp", cfg.Addrs[peer], cfg.DialTimeout)
				if err == nil {
					var hdr [4]byte
					binary.LittleEndian.PutUint32(hdr[:], uint32(b.rank))
					if _, err := conn.Write(hdr[:]); err != nil {
						setErr(err)
						return
					}
					b.conns[peer] = conn
					return
				}
				if time.Now().After(deadline) {
					setErr(fmt.Errorf("tcp: dial rank %d (%s): %w", peer, cfg.Addrs[peer], err))
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(peer)
	}
	wg.Wait()
	if connErr != nil {
		b.Close()
		return nil, connErr
	}

	// Start per-peer writer and reader loops.
	for peer := 0; peer < b.size; peer++ {
		b.outs[peer] = make(chan outFrame, cfg.SendDepth)
		b.sendWG.Add(1)
		go b.writer(peer)
		if peer != b.rank {
			go b.reader(peer, b.conns[peer])
		}
	}
	return b, nil
}

// Rank returns this backend's rank.
func (b *Backend) Rank() int { return b.rank }

// Size returns the job size.
func (b *Backend) Size() int { return b.size }

// Addr returns the actual listen address (useful with ":0" configs).
func (b *Backend) Addr() string { return b.ln.Addr().String() }

// Register pins buf into the local registration table.
func (b *Backend) Register(buf []byte) (mem.RemoteBuffer, sync.Locker, error) {
	if len(buf) == 0 {
		return mem.RemoteBuffer{}, nil, fmt.Errorf("tcp: empty registration")
	}
	b.memMu.Lock()
	defer b.memMu.Unlock()
	rkey := b.nextRKey
	b.nextRKey++
	base := b.nextBase
	sz := (uint64(len(buf)) + 0xFFF) &^ uint64(0xFFF)
	b.nextBase += sz + 0x1000
	b.regs[rkey] = &registration{buf: buf, base: base, rkey: rkey}
	return mem.RemoteBuffer{Addr: base, RKey: rkey, Len: len(buf)}, b.memMu.RLocker(), nil
}

// Deregister removes a registration.
func (b *Backend) Deregister(rb mem.RemoteBuffer) error {
	b.memMu.Lock()
	defer b.memMu.Unlock()
	if _, ok := b.regs[rb.RKey]; !ok {
		return fmt.Errorf("tcp: no registration with rkey %d", rb.RKey)
	}
	delete(b.regs, rb.RKey)
	return nil
}

// lookup resolves (rkey, addr, n); caller must hold memMu (read or write).
func (b *Backend) lookup(rkey uint32, addr uint64, n int) (*registration, error) {
	r, ok := b.regs[rkey]
	if !ok {
		return nil, fmt.Errorf("tcp: unknown rkey %d", rkey)
	}
	if addr < r.base || addr+uint64(n) > r.base+uint64(len(r.buf)) || addr+uint64(n) < addr {
		return nil, fmt.Errorf("tcp: address out of registration bounds")
	}
	return r, nil
}

// enqueue places a frame on a peer's writer queue, non-blocking.
func (b *Backend) enqueue(rank int, f outFrame) error {
	if rank < 0 || rank >= b.size {
		return core.ErrBadRank
	}
	select {
	case <-b.closed:
		return core.ErrClosed
	default:
	}
	select {
	case b.outs[rank] <- f:
		trace.Record(trace.KindPost, b.rank, f.token, "tcp.post")
		return nil
	default:
		return core.ErrWouldBlock
	}
}

// PostWrite queues a one-sided write toward rank.
func (b *Backend) PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error {
	f := make([]byte, 1+8+1+8+4+4+len(local))
	f[0] = opWrite
	binary.LittleEndian.PutUint64(f[1:], token)
	if signaled {
		f[9] = 1
	}
	binary.LittleEndian.PutUint64(f[10:], raddr)
	binary.LittleEndian.PutUint32(f[18:], rkey)
	binary.LittleEndian.PutUint32(f[22:], uint32(len(local)))
	copy(f[26:], local)
	return b.enqueue(rank, outFrame{data: f, token: token, signaled: signaled})
}

// PostWriteBatch queues a burst of one-sided writes toward rank
// (core.BatchBackend). Frames are built and enqueued in order; the
// loop stops at the first full queue and returns the accepted count,
// so the caller retries just the tail. Each frame copies its payload,
// so the snapshot-at-post contract holds here too.
func (b *Backend) PostWriteBatch(rank int, reqs []core.WriteReq) (int, error) {
	for i, r := range reqs {
		if err := b.PostWrite(rank, r.Local, r.RemoteAddr, r.RKey, r.Token, r.Signaled); err != nil {
			return i, err
		}
	}
	return len(reqs), nil
}

// PostRead queues a one-sided read from rank.
func (b *Backend) PostRead(rank int, local []byte, raddr uint64, rkey uint32, token uint64) error {
	f := make([]byte, 1+8+8+4+4)
	f[0] = opRead
	binary.LittleEndian.PutUint64(f[1:], token)
	binary.LittleEndian.PutUint64(f[9:], raddr)
	binary.LittleEndian.PutUint32(f[17:], rkey)
	binary.LittleEndian.PutUint32(f[21:], uint32(len(local)))
	b.pendMu.Lock()
	b.pendBuf[token] = local
	b.pendMu.Unlock()
	if err := b.enqueue(rank, outFrame{data: f, token: token, signaled: true}); err != nil {
		b.pendMu.Lock()
		delete(b.pendBuf, token)
		b.pendMu.Unlock()
		return err
	}
	return nil
}

// PostFetchAdd queues a remote fetch-and-add.
func (b *Backend) PostFetchAdd(rank int, result []byte, raddr uint64, rkey uint32, add uint64, token uint64) error {
	f := make([]byte, 1+8+8+4+8)
	f[0] = opFAdd
	binary.LittleEndian.PutUint64(f[1:], token)
	binary.LittleEndian.PutUint64(f[9:], raddr)
	binary.LittleEndian.PutUint32(f[17:], rkey)
	binary.LittleEndian.PutUint64(f[21:], add)
	return b.postAtomic(rank, result, token, f)
}

// PostCompSwap queues a remote compare-and-swap.
func (b *Backend) PostCompSwap(rank int, result []byte, raddr uint64, rkey uint32, compare, swap uint64, token uint64) error {
	f := make([]byte, 1+8+8+4+8+8)
	f[0] = opCSwap
	binary.LittleEndian.PutUint64(f[1:], token)
	binary.LittleEndian.PutUint64(f[9:], raddr)
	binary.LittleEndian.PutUint32(f[17:], rkey)
	binary.LittleEndian.PutUint64(f[21:], compare)
	binary.LittleEndian.PutUint64(f[29:], swap)
	return b.postAtomic(rank, result, token, f)
}

func (b *Backend) postAtomic(rank int, result []byte, token uint64, f []byte) error {
	b.pendMu.Lock()
	b.pendBuf[token] = result
	b.pendMu.Unlock()
	if err := b.enqueue(rank, outFrame{data: f, token: token, signaled: true}); err != nil {
		b.pendMu.Lock()
		delete(b.pendBuf, token)
		b.pendMu.Unlock()
		return err
	}
	return nil
}

// ApplyLocal places data into this rank's own registered memory with
// full validation (loopback DMA for packed-put payloads).
func (b *Backend) ApplyLocal(raddr uint64, rkey uint32, data []byte) error {
	b.memMu.Lock()
	reg, err := b.lookup(rkey, raddr, len(data))
	if err == nil {
		copy(reg.buf[raddr-reg.base:], data)
	}
	b.memMu.Unlock()
	if err == nil {
		b.writeAct.Add(1)
	}
	return err
}

// WriteActivity implements core.ActivityBackend with one counter for
// all registrations (the TCP agent applies every remote write).
func (b *Backend) WriteActivity(rb mem.RemoteBuffer) (func() uint64, bool) {
	return b.writeAct.Load, true
}

// Poll reaps completions.
func (b *Backend) Poll(dst []core.BackendCompletion) int {
	b.compMu.Lock()
	defer b.compMu.Unlock()
	n := len(b.comps)
	if n > len(dst) {
		n = len(dst)
	}
	copy(dst, b.comps[:n])
	b.comps = b.comps[n:]
	return n
}

func (b *Backend) pushComp(c core.BackendCompletion) {
	trace.Record(trace.KindComplete, b.rank, c.Token, "tcp.comp")
	b.compMu.Lock()
	b.comps = append(b.comps, c)
	b.compMu.Unlock()
}

// Close tears down connections and loops.
func (b *Backend) Close() error {
	b.closeMu.Lock()
	if b.done {
		b.closeMu.Unlock()
		return nil
	}
	b.done = true
	close(b.closed)
	b.closeMu.Unlock()
	if b.ln != nil {
		b.ln.Close()
	}
	for _, c := range b.conns {
		if c != nil {
			c.Close()
		}
	}
	b.exgMu.Lock()
	b.exgCond.Broadcast()
	b.exgMu.Unlock()
	return nil
}
