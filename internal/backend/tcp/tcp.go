// Package tcp is Photon's sockets backend: the same core.Backend
// contract as the simulated-verbs backend, but over real TCP
// connections, so a Photon job can span OS processes (or just exercise
// a second transport, reproducing the original's backend-portability
// claim: verbs / uGNI / libfabric / sockets behind one middleware).
//
// One-sided semantics are emulated the way Photon's TCP and UD backends
// emulate them: each rank runs an agent loop per connection that
// applies WRITE/READ/ATOMIC requests directly against the local
// registration table and acknowledges signaled operations. Per
// connection, TCP's in-order bytestream plays the role of the RC queue
// pair: requests apply in posting order, and an ACK for operation k
// implies operations 1..k-1 have been applied.
//
// Data path (wire format v3): every frame carries a 12-byte header,
//
//	u32 bodyLen | u64 cumAck | body
//
// where cumAck is the cumulative count of *signaled writes* this
// sender has applied from the receiving peer (0 = no information).
// Acks therefore piggyback on whatever traffic already flows the other
// way; a standalone ack (bodyLen 0) is emitted only after the reader
// drains its socket with acks still owed. The writer coalesces queued
// frames into one gather buffer and flushes with a single Write —
// immediately when the queue runs dry (latency never waits on a
// timer), batching up to FlushBytes while more work is queued. Reads
// and atomics are not in the cumAck sequence space; they complete via
// token-keyed response frames, which are themselves stamped with the
// applied-write count at push time so cross-kind posting order is
// preserved at the initiator. See DESIGN.md "TCP data path".
//
// Fault tolerance: a lost connection is redialed with bounded
// exponential backoff inside Config.ReconnectWindow. The v3 handshake
// is symmetric — both sides report how many of the peer's signaled
// writes they have applied — so after a reconnect each writer trims
// its retransmit window to the peer's report and replays exactly the
// frames the dead connection may have lost, preserving the RC
// ordering contract. Non-idempotent operations (reads, atomics) in
// flight on a dead connection are never replayed; they complete with
// core.ErrPeerDown. When the window expires the peer is declared down
// and everything queued toward it fails. See DESIGN.md "Fault
// tolerance" and recover.go for the link state machine.
//
// Bootstrap exchange is a star over rank 0: every rank ships its blob
// to the root, which gathers and rebroadcasts. Connections form a full
// mesh at New time from a caller-supplied address book (the moral
// equivalent of a launcher's hostfile). Exchange frames are not
// retransmitted: the bootstrap collective is expected to run before
// the job starts injecting faults.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/core"
	"photon/internal/mem"
	"photon/internal/trace"
)

// Errors specific to the TCP backend.
var (
	ErrBadAddress = errors.New("tcp: bad address configuration")
	ErrHandshake  = errors.New("tcp: peer handshake failed")
)

// Config describes one rank of a TCP job.
type Config struct {
	// Rank of this process; Addrs[Rank] must be a listenable address.
	Rank int
	// Addrs is the full address book, indexed by rank.
	Addrs []string
	// DialTimeout bounds connection setup (default 10s).
	DialTimeout time.Duration
	// SendDepth bounds queued outbound requests per peer (default 1024);
	// a full queue surfaces as ErrWouldBlock, like a full send queue.
	SendDepth int
	// FlushBytes caps the writer's gather buffer per connection
	// (default 256KiB): while more frames are queued the writer keeps
	// filling up to this cap before issuing the Write syscall. The
	// read side sizes its buffered reader to match.
	FlushBytes int
	// ReconnectWindow bounds how long a lost connection is redialed
	// before the peer is declared down (default 5s). Negative disables
	// recovery entirely: a lost connection immediately declares the
	// peer down, failing everything in flight with core.ErrPeerDown.
	ReconnectWindow time.Duration
	// ReconnectBackoff is the initial redial delay (default 25ms); it
	// doubles per failed attempt, with jitter, capped at one second.
	ReconnectBackoff time.Duration
	// Listener optionally supplies a pre-bound listener for this rank
	// (port-0 setups and tests); when set, Addrs[Rank] is only used by
	// peers to reach it.
	Listener net.Listener
}

func (c *Config) setDefaults() error {
	if len(c.Addrs) == 0 || c.Rank < 0 || c.Rank >= len(c.Addrs) {
		return ErrBadAddress
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.SendDepth <= 0 {
		c.SendDepth = 1024
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 256 << 10
	}
	if c.ReconnectWindow == 0 {
		c.ReconnectWindow = 5 * time.Second
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 25 * time.Millisecond
	}
	return nil
}

// Wire format v3 framing.
const (
	// frameHdrLen prefixes every frame: u32 body length | u64 cumAck.
	frameHdrLen = 12
	// maxFrameLen rejects absurd lengths from a poisoned stream.
	maxFrameLen = 1 << 30
	// Handshake (symmetric, 24 bytes each way): magic, wire version,
	// rank, flags, and the cumulative count of the peer's signaled
	// writes this side has applied — the retransmit cut point.
	wireMagic   = 0x32764850
	wireVersion = 4
	hsLen       = 24
	// hsFlagReconnect marks a handshake that replaces an earlier
	// connection (informational; both paths are handled identically).
	hsFlagReconnect = 1 << 0
)

// Wire opcodes.
const (
	opWrite      = 1
	opRead       = 2
	opFAdd       = 3
	opCSwap      = 4
	opNack       = 5 // body: u8 op | u64 seq of the failed signaled write
	opReadResp   = 6
	opAtomicResp = 7
	opExg        = 8
	opExgResp    = 9
	opHeartbeat  = 10 // liveness probe + clock sync, suppressed by data
)

// Heartbeat body (wire v4): u8 op | i64 txNS | i64 echoTxNS | i64
// echoRxNS, all wall-clock UnixNano in the sender's clock domain
// except echoTxNS, which echoes the receiver's own earlier tx stamp.
// The four timestamps of two opposing heartbeats form one NTP-style
// exchange: offset = ((t1-t0)+(t2-t3))/2, rtt = (t3-t0)-(t2-t1).
// A 1-byte legacy body is still accepted as a bare liveness probe.
const hbBodyLen = 1 + 8 + 8 + 8

// tcpEpoch anchors the backend's monotonic timestamps (liveness
// tracking); time.Since against a fixed epoch never allocates.
var tcpEpoch = time.Now()

func nowNano() int64 { return int64(time.Since(tcpEpoch)) }

// registration is one pinned buffer.
type registration struct {
	buf  []byte
	base uint64
	rkey uint32
}

// outFrame is one queued outbound request.
type outFrame struct {
	data []byte
	// completion bookkeeping for requests that expect a response
	token    uint64
	signaled bool
}

// outItem is one entry on a peer's request channel: a single frame, or
// a doorbell batch that the writer folds into one flush (and that
// occupies one SendDepth slot, matching one doorbell ring).
type outItem struct {
	one  outFrame
	many []outFrame // non-nil for batches; `one` is unused then
}

// pendDst is a parked read/atomic result buffer and the rank the
// request went to (so a dead link can fail exactly its own ops).
type pendDst struct {
	buf  []byte
	rank int
}

// Backend is one rank's TCP transport endpoint.
type Backend struct {
	cfg  Config
	rank int
	size int

	ln    net.Listener
	links []*link // per-peer connection state (nil at self rank)

	//photon:lock tcpout 20
	outMu   sync.Mutex
	outs    []chan outItem // per peer; self uses loopback dispatch
	replyQs []*replyQueue  // per peer, lazily created
	sendWG  sync.WaitGroup

	// Per-peer cumulative-ack state (self slot unused).
	windows  []*sendWindow   // unacked opWrite frames, retained for retransmit
	recvSeqW []atomic.Uint64 // signaled writes applied from each peer
	lastNack []atomic.Uint64 // highest nack seq queued toward each peer
	cstats   []connStats     // data-path counters per connection

	//photon:lock tcpmem 40
	memMu    sync.RWMutex  // guards all registered memory (the "DMA lock")
	writeAct atomic.Uint64 // bumped after every applied remote write/atomic
	regs     map[uint32]*registration
	nextRKey uint32
	nextBase uint64

	// compq carries agent→engine completions and doubles as the
	// NotifyBackend/WakeSinkBackend event source (kicked on completions
	// and applied remote data).
	compq *core.CompQueue

	// pending read/atomic result buffers keyed by token; sentResp
	// tracks, per peer, which of them actually hit the wire (those are
	// the non-idempotent ops a reconnect cannot replay).
	//photon:lock tcppend 70
	pendMu   sync.Mutex
	pendBuf  map[uint64]pendDst
	sentResp []map[uint64]struct{}

	// Liveness plane, armed by ConfigureLiveness (core.HealthBackend).
	hbNS      atomic.Int64 // heartbeat interval; 0 = heartbeats off
	suspectNS atomic.Int64
	hbOnce    sync.Once

	// exchange state.
	//photon:lock tcpexg 80
	exgMu     sync.Mutex
	exgCond   *sync.Cond
	exgResp   [][][]byte       // queue of completed exchanges (non-root waits here)
	exgGather map[int][][]byte // root: per-rank queues of received blobs
	exgSelf   [][]byte         // root: own blobs queued per generation

	closed chan struct{}
	//photon:lock tcpclose 90
	closeMu sync.Mutex
	done    bool
}

var (
	_ core.Backend         = (*Backend)(nil)
	_ core.BatchBackend    = (*Backend)(nil)
	_ core.StatsBackend    = (*Backend)(nil)
	_ core.NotifyBackend   = (*Backend)(nil)
	_ core.WakeSinkBackend = (*Backend)(nil)
	_ core.HealthBackend   = (*Backend)(nil)
)

// New builds the endpoint: it listens, forms the full mesh (lower rank
// dials higher rank), and starts the agent loops. New is collective
// across the job. The accept loop stays up for the life of the
// backend so a reconnecting lower-rank peer can always dial back in.
func New(cfg Config) (*Backend, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	n := len(cfg.Addrs)
	b := &Backend{
		cfg:       cfg,
		rank:      cfg.Rank,
		size:      n,
		links:     make([]*link, n),
		outs:      make([]chan outItem, n),
		windows:   make([]*sendWindow, n),
		recvSeqW:  make([]atomic.Uint64, n),
		lastNack:  make([]atomic.Uint64, n),
		cstats:    make([]connStats, n),
		regs:      make(map[uint32]*registration),
		nextRKey:  1,
		nextBase:  0x1000,
		pendBuf:   make(map[uint64]pendDst),
		sentResp:  make([]map[uint64]struct{}, n),
		exgGather: make(map[int][][]byte),
		compq:     core.NewCompQueue(),
		closed:    make(chan struct{}),
	}
	b.exgCond = sync.NewCond(&b.exgMu)
	for i := range b.windows {
		b.windows[i] = &sendWindow{}
		if i != b.rank {
			b.links[i] = newLink(i)
		}
	}

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Addrs[cfg.Rank], err)
		}
	}
	b.ln = ln

	// Writers first: each parks in awaitConn until a connection is
	// installed, so the mesh can form in any order.
	for peer := 0; peer < b.size; peer++ {
		b.outs[peer] = make(chan outItem, cfg.SendDepth)
		b.sendWG.Add(1)
		go b.writer(peer)
	}
	go b.acceptLoop()

	// Dial higher ranks in parallel; lower ranks dial into acceptLoop.
	var wg sync.WaitGroup
	var connErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if connErr == nil {
			connErr = err
		}
		errMu.Unlock()
	}
	for peer := b.rank + 1; peer < b.size; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			if err := b.dialPeer(peer, cfg.DialTimeout); err != nil {
				setErr(err)
			}
		}(peer)
	}
	wg.Wait()
	if connErr == nil {
		connErr = b.awaitMesh(cfg.DialTimeout)
	}
	if connErr != nil {
		b.Close()
		return nil, connErr
	}
	return b, nil
}

// dialPeer establishes the initial connection to a higher rank,
// retrying connection-refused (the peer may not be listening yet)
// until the budget expires.
func (b *Backend) dialPeer(peer int, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		conn, err := net.DialTimeout("tcp", b.cfg.Addrs[peer], budget)
		if err == nil {
			applied, sent, herr := b.clientHandshake(conn, peer)
			if herr == nil {
				b.installConn(peer, conn, applied, sent)
				return nil
			}
			conn.Close()
			err = herr
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tcp: dial rank %d (%s): %w", peer, b.cfg.Addrs[peer], err)
		}
		select {
		case <-b.closed:
			return core.ErrClosed
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// awaitMesh waits for every lower rank to have dialed in.
func (b *Backend) awaitMesh(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		missing := -1
		for peer := 0; peer < b.rank; peer++ {
			if b.links[peer].genA.Load() == 0 {
				missing = peer
				break
			}
		}
		if missing < 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: rank %d never connected", ErrHandshake, missing)
		}
		select {
		case <-b.closed:
			return core.ErrClosed
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// writeHello sends one side of the symmetric handshake: magic, wire
// version, rank, flags, and the cumulative count of the peer's
// signaled writes this side has applied (the retransmit cut point; 0
// on an initial connection, where nothing has been applied yet).
func writeHello(conn net.Conn, rank int, flags uint32, applied uint64) error {
	var hs [hsLen]byte
	binary.LittleEndian.PutUint32(hs[0:], wireMagic)
	binary.LittleEndian.PutUint32(hs[4:], wireVersion)
	binary.LittleEndian.PutUint32(hs[8:], uint32(rank))
	binary.LittleEndian.PutUint32(hs[12:], flags)
	binary.LittleEndian.PutUint64(hs[16:], applied)
	_, err := conn.Write(hs[:])
	return err
}

// readHello validates magic and wire version and returns the sender's
// rank, flags, and applied count.
func readHello(conn net.Conn) (rank int, flags uint32, applied uint64, err error) {
	var hs [hsLen]byte
	if _, rerr := io.ReadFull(conn, hs[:]); rerr != nil {
		return 0, 0, 0, fmt.Errorf("%w: %v", ErrHandshake, rerr)
	}
	if m := binary.LittleEndian.Uint32(hs[0:]); m != wireMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %#x", ErrHandshake, m)
	}
	if v := binary.LittleEndian.Uint32(hs[4:]); v != wireVersion {
		return 0, 0, 0, fmt.Errorf("%w: wire version %d, want %d", ErrHandshake, v, wireVersion)
	}
	rank = int(binary.LittleEndian.Uint32(hs[8:]))
	flags = binary.LittleEndian.Uint32(hs[12:])
	applied = binary.LittleEndian.Uint64(hs[16:])
	return rank, flags, applied, nil
}

// clientHandshake runs the dialer side: send our hello, read the
// peer's response. Returns the peer's applied count (our retransmit
// cut) and the applied count we reported (the new connection's
// conveyed-ack floor).
func (b *Backend) clientHandshake(conn net.Conn, peer int) (peerApplied, sentApplied uint64, err error) {
	conn.SetDeadline(time.Now().Add(b.cfg.DialTimeout))
	defer conn.SetDeadline(time.Time{})
	var flags uint32
	if b.links[peer].genA.Load() > 0 {
		flags = hsFlagReconnect
	}
	sentApplied = b.recvSeqW[peer].Load()
	if err = writeHello(conn, b.rank, flags, sentApplied); err != nil {
		return 0, 0, err
	}
	rank, _, applied, rerr := readHello(conn)
	if rerr != nil {
		return 0, 0, rerr
	}
	if rank != peer {
		return 0, 0, fmt.Errorf("%w: dialed rank %d, got %d", ErrHandshake, peer, rank)
	}
	return applied, sentApplied, nil
}

// Rank returns this backend's rank.
func (b *Backend) Rank() int { return b.rank }

// Size returns the job size.
func (b *Backend) Size() int { return b.size }

// Addr returns the actual listen address (useful with ":0" configs).
func (b *Backend) Addr() string { return b.ln.Addr().String() }

// Register pins buf into the local registration table.
func (b *Backend) Register(buf []byte) (mem.RemoteBuffer, sync.Locker, error) {
	if len(buf) == 0 {
		return mem.RemoteBuffer{}, nil, fmt.Errorf("tcp: empty registration")
	}
	b.memMu.Lock()
	defer b.memMu.Unlock()
	rkey := b.nextRKey
	b.nextRKey++
	base := b.nextBase
	sz := (uint64(len(buf)) + 0xFFF) &^ uint64(0xFFF)
	b.nextBase += sz + 0x1000
	b.regs[rkey] = &registration{buf: buf, base: base, rkey: rkey}
	return mem.RemoteBuffer{Addr: base, RKey: rkey, Len: len(buf)}, b.memMu.RLocker(), nil
}

// Deregister removes a registration.
func (b *Backend) Deregister(rb mem.RemoteBuffer) error {
	b.memMu.Lock()
	defer b.memMu.Unlock()
	if _, ok := b.regs[rb.RKey]; !ok {
		return fmt.Errorf("tcp: no registration with rkey %d", rb.RKey)
	}
	delete(b.regs, rb.RKey)
	return nil
}

// lookup resolves (rkey, addr, n); caller must hold memMu (read or write).
func (b *Backend) lookup(rkey uint32, addr uint64, n int) (*registration, error) {
	r, ok := b.regs[rkey]
	if !ok {
		return nil, fmt.Errorf("tcp: unknown rkey %d", rkey)
	}
	if addr < r.base || addr+uint64(n) > r.base+uint64(len(r.buf)) || addr+uint64(n) < addr {
		return nil, fmt.Errorf("tcp: address out of registration bounds")
	}
	return r, nil
}

// enqueue places an item on a peer's writer queue, non-blocking. A
// peer latched down fails fast with core.ErrPeerDown.
func (b *Backend) enqueue(rank int, it outItem) error {
	if rank < 0 || rank >= b.size {
		return core.ErrBadRank
	}
	select {
	case <-b.closed:
		return core.ErrClosed
	default:
	}
	if lk := b.links[rank]; lk != nil && lk.down.Load() {
		return core.ErrPeerDown
	}
	select {
	case b.outs[rank] <- it:
		return nil
	default:
		return core.ErrWouldBlock
	}
}

// writeFrame builds an opWrite frame, copying the payload
// (snapshot-at-post).
func writeFrame(local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) []byte {
	f := make([]byte, 1+8+1+8+4+4+len(local))
	f[0] = opWrite
	binary.LittleEndian.PutUint64(f[1:], token)
	if signaled {
		f[9] = 1
	}
	binary.LittleEndian.PutUint64(f[10:], raddr)
	binary.LittleEndian.PutUint32(f[18:], rkey)
	binary.LittleEndian.PutUint32(f[22:], uint32(len(local)))
	copy(f[26:], local)
	return f
}

// PostWrite queues a one-sided write toward rank.
func (b *Backend) PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error {
	f := writeFrame(local, raddr, rkey, token, signaled)
	if err := b.enqueue(rank, outItem{one: outFrame{data: f, token: token, signaled: signaled}}); err != nil {
		return err
	}
	trace.Record(trace.KindPost, b.rank, token, "tcp.post")
	return nil
}

// PostWriteBatch queues a burst of one-sided writes toward rank
// (core.BatchBackend). The whole batch is one queue item, so a
// doorbell batch maps to a single writer wakeup and (queue permitting)
// a single flush syscall. Admission is all-or-nothing: on a full queue
// it returns (0, ErrWouldBlock) and the caller retries the whole
// batch, which the contract permits. Each frame copies its payload, so
// the snapshot-at-post contract holds here too.
func (b *Backend) PostWriteBatch(rank int, reqs []core.WriteReq) (int, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	frames := make([]outFrame, len(reqs))
	for i, r := range reqs {
		frames[i] = outFrame{
			data:     writeFrame(r.Local, r.RemoteAddr, r.RKey, r.Token, r.Signaled),
			token:    r.Token,
			signaled: r.Signaled,
		}
	}
	if err := b.enqueue(rank, outItem{many: frames}); err != nil {
		return 0, err
	}
	for _, f := range frames {
		trace.Record(trace.KindPost, b.rank, f.token, "tcp.post")
	}
	return len(reqs), nil
}

// PostRead queues a one-sided read from rank.
func (b *Backend) PostRead(rank int, local []byte, raddr uint64, rkey uint32, token uint64) error {
	f := make([]byte, 1+8+8+4+4)
	f[0] = opRead
	binary.LittleEndian.PutUint64(f[1:], token)
	binary.LittleEndian.PutUint64(f[9:], raddr)
	binary.LittleEndian.PutUint32(f[17:], rkey)
	binary.LittleEndian.PutUint32(f[21:], uint32(len(local)))
	return b.postResponseKeyed(rank, local, token, f)
}

// PostFetchAdd queues a remote fetch-and-add.
func (b *Backend) PostFetchAdd(rank int, result []byte, raddr uint64, rkey uint32, add uint64, token uint64) error {
	f := make([]byte, 1+8+8+4+8)
	f[0] = opFAdd
	binary.LittleEndian.PutUint64(f[1:], token)
	binary.LittleEndian.PutUint64(f[9:], raddr)
	binary.LittleEndian.PutUint32(f[17:], rkey)
	binary.LittleEndian.PutUint64(f[21:], add)
	return b.postResponseKeyed(rank, result, token, f)
}

// PostCompSwap queues a remote compare-and-swap.
func (b *Backend) PostCompSwap(rank int, result []byte, raddr uint64, rkey uint32, compare, swap uint64, token uint64) error {
	f := make([]byte, 1+8+8+4+8+8)
	f[0] = opCSwap
	binary.LittleEndian.PutUint64(f[1:], token)
	binary.LittleEndian.PutUint64(f[9:], raddr)
	binary.LittleEndian.PutUint32(f[17:], rkey)
	binary.LittleEndian.PutUint64(f[21:], compare)
	binary.LittleEndian.PutUint64(f[29:], swap)
	return b.postResponseKeyed(rank, result, token, f)
}

// postResponseKeyed queues a request that completes via a token-keyed
// response frame (reads and atomics), parking the result buffer in
// pendBuf until the response lands.
func (b *Backend) postResponseKeyed(rank int, result []byte, token uint64, f []byte) error {
	b.pendMu.Lock()
	b.pendBuf[token] = pendDst{buf: result, rank: rank}
	b.pendMu.Unlock()
	if err := b.enqueue(rank, outItem{one: outFrame{data: f, token: token, signaled: true}}); err != nil {
		b.pendMu.Lock()
		delete(b.pendBuf, token)
		b.pendMu.Unlock()
		return err
	}
	trace.Record(trace.KindPost, b.rank, token, "tcp.post")
	return nil
}

// markSentResp records response-keyed tokens whose request frames are
// about to hit the wire toward peer: if that connection dies, exactly
// these ops are the non-idempotent in-flight ones a reconnect cannot
// replay.
func (b *Backend) markSentResp(peer int, toks []uint64) {
	b.pendMu.Lock()
	sr := b.sentResp[peer]
	if sr == nil {
		sr = make(map[uint64]struct{})
		b.sentResp[peer] = sr
	}
	for _, tok := range toks {
		sr[tok] = struct{}{}
	}
	b.pendMu.Unlock()
}

// ApplyLocal places data into this rank's own registered memory with
// full validation (loopback DMA for packed-put payloads).
func (b *Backend) ApplyLocal(raddr uint64, rkey uint32, data []byte) error {
	b.memMu.Lock()
	reg, err := b.lookup(rkey, raddr, len(data))
	if err == nil {
		copy(reg.buf[raddr-reg.base:], data)
	}
	b.memMu.Unlock()
	if err == nil {
		b.writeAct.Add(1)
	}
	return err
}

// WriteActivity implements core.ActivityBackend with one counter for
// all registrations (the TCP agent applies every remote write).
func (b *Backend) WriteActivity(rb mem.RemoteBuffer) (func() uint64, bool) {
	return b.writeAct.Load, true
}

// Poll reaps completions.
func (b *Backend) Poll(dst []core.BackendCompletion) int {
	return b.compq.Drain(dst)
}

func (b *Backend) pushComp(c core.BackendCompletion) {
	trace.Record(trace.KindComplete, b.rank, c.Token, "tcp.comp")
	b.compq.Push(c)
}

// Notify implements core.NotifyBackend: the returned channel receives
// a token whenever the agent queues a completion or applies remote
// data, so blocking waiters can park on it instead of sleep-polling.
// Parking matters doubly on few-core hosts: a sleeping waiter frees
// the processor for the runtime's network poller (a spinning one
// starves it), and the channel send wakes the waiter at goroutine
// handoff latency instead of kernel timer granularity.
func (b *Backend) Notify() <-chan struct{} { return b.compq.Wake().Chan() }

// SetWakeSink implements core.WakeSinkBackend: completion and
// remote-data events call fn directly instead of latching the Notify
// channel, sparing the engine a relay goroutine.
func (b *Backend) SetWakeSink(fn func()) { b.compq.Wake().SetSink(fn) }

// kick signals the wake latch without blocking; an event already
// pending means the waiter will see this one anyway.
func (b *Backend) kick() { b.compq.Kick() }

// nudge signals a cap-1 event channel without blocking.
func nudge(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Close tears down connections and loops.
func (b *Backend) Close() error {
	b.closeMu.Lock()
	if b.done {
		b.closeMu.Unlock()
		return nil
	}
	b.done = true
	close(b.closed)
	b.closeMu.Unlock()
	if b.ln != nil {
		b.ln.Close()
	}
	for _, lk := range b.links {
		if lk == nil {
			continue
		}
		lk.mu.Lock()
		if lk.conn != nil {
			lk.conn.Close()
		}
		lk.cond.Broadcast()
		lk.mu.Unlock()
		nudge(lk.reconn)
		nudge(lk.installed)
	}
	b.exgMu.Lock()
	b.exgCond.Broadcast()
	b.exgMu.Unlock()
	return nil
}

func (b *Backend) isClosed() bool {
	select {
	case <-b.closed:
		return true
	default:
		return false
	}
}
