package tcp

import (
	"fmt"
	"sync/atomic"
)

// connStats holds one connection's data-path counters; the writer and
// reader goroutines update them with atomics so Stats() can snapshot
// concurrently.
type connStats struct {
	flushes   atomic.Int64 // Write syscalls issued
	framesOut atomic.Int64 // frames coalesced into those writes
	bytesOut  atomic.Int64
	readCalls atomic.Int64 // Read syscalls issued (buffered-reader fills)
	framesIn  atomic.Int64
	bytesIn   atomic.Int64

	signaledAcked atomic.Int64 // our signaled writes completed by peer acks
	acksPiggy     atomic.Int64 // acks conveyed on flushes carrying data frames
	acksSolo      atomic.Int64 // acks conveyed by pure standalone-ack flushes
	ackFrames     atomic.Int64 // standalone ack frames emitted
	nacksSent     atomic.Int64 // failed signaled writes nacked to the initiator

	heartbeats   atomic.Int64 // liveness probes sent (suppressed ones excluded)
	reconnects   atomic.Int64 // connections re-established after a loss
	retxFrames   atomic.Int64 // window frames replayed after reconnects
	clockSamples atomic.Int64 // accepted (min-RTT) clock-offset samples
}

// DataPathStats is a point-in-time snapshot of the TCP data path,
// either per connection (PeerStats) or aggregated (Stats). The derived
// ratios quantify the coalescing the writer achieved: FramesPerFlush
// and the bytes-per-syscall pair show how many frames ride each Write
// and Read, and PiggybackRatio shows what fraction of cumulative acks
// traveled on frames that were going to the peer anyway.
type DataPathStats struct {
	Flushes   int64
	FramesOut int64
	BytesOut  int64
	ReadCalls int64
	FramesIn  int64
	BytesIn   int64

	SignaledAcked   int64
	AcksPiggybacked int64
	AcksStandalone  int64
	AckFramesSent   int64
	NacksSent       int64

	Heartbeats       int64
	Reconnects       int64
	RetransmitFrames int64
	ClockSamples     int64
}

func (s *DataPathStats) add(c *connStats) {
	s.Flushes += c.flushes.Load()
	s.FramesOut += c.framesOut.Load()
	s.BytesOut += c.bytesOut.Load()
	s.ReadCalls += c.readCalls.Load()
	s.FramesIn += c.framesIn.Load()
	s.BytesIn += c.bytesIn.Load()
	s.SignaledAcked += c.signaledAcked.Load()
	s.AcksPiggybacked += c.acksPiggy.Load()
	s.AcksStandalone += c.acksSolo.Load()
	s.AckFramesSent += c.ackFrames.Load()
	s.NacksSent += c.nacksSent.Load()
	s.Heartbeats += c.heartbeats.Load()
	s.Reconnects += c.reconnects.Load()
	s.RetransmitFrames += c.retxFrames.Load()
	s.ClockSamples += c.clockSamples.Load()
}

// FramesPerFlush reports how many frames each Write syscall carried.
func (s DataPathStats) FramesPerFlush() float64 { return ratio(s.FramesOut, s.Flushes) }

// BytesPerWrite reports the mean payload of each Write syscall.
func (s DataPathStats) BytesPerWrite() float64 { return ratio(s.BytesOut, s.Flushes) }

// BytesPerRead reports the mean fill of each Read syscall.
func (s DataPathStats) BytesPerRead() float64 { return ratio(s.BytesIn, s.ReadCalls) }

// AcksCoalesced reports acks that did not cost a dedicated frame:
// everything conveyed minus the standalone frames that carried the rest.
func (s DataPathStats) AcksCoalesced() int64 {
	return s.AcksPiggybacked + s.AcksStandalone - s.AckFramesSent
}

// PiggybackRatio reports the fraction of conveyed acks that rode on
// data-bearing flushes.
func (s DataPathStats) PiggybackRatio() float64 {
	return ratio(s.AcksPiggybacked, s.AcksPiggybacked+s.AcksStandalone)
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Stats aggregates the data-path counters across every connection.
func (b *Backend) Stats() DataPathStats {
	var s DataPathStats
	for i := range b.cstats {
		s.add(&b.cstats[i])
	}
	return s
}

// PeerStats snapshots one connection's counters (zero for self/bad rank).
func (b *Backend) PeerStats(peer int) DataPathStats {
	var s DataPathStats
	if peer >= 0 && peer < len(b.cstats) {
		s.add(&b.cstats[peer])
	}
	return s
}

// TransportStats implements core.StatsBackend: the aggregate counters
// surface as tcp_* gauges in Photon.Metrics() snapshots.
func (b *Backend) TransportStats(yield func(name string, value int64)) {
	s := b.Stats()
	yield("tcp_flushes", s.Flushes)
	yield("tcp_frames_out", s.FramesOut)
	yield("tcp_bytes_out", s.BytesOut)
	yield("tcp_read_calls", s.ReadCalls)
	yield("tcp_frames_in", s.FramesIn)
	yield("tcp_bytes_in", s.BytesIn)
	yield("tcp_signaled_acked", s.SignaledAcked)
	yield("tcp_acks_piggybacked", s.AcksPiggybacked)
	yield("tcp_acks_standalone", s.AcksStandalone)
	yield("tcp_ack_frames", s.AckFramesSent)
	yield("tcp_nacks", s.NacksSent)
	yield("tcp_heartbeats", s.Heartbeats)
	yield("tcp_reconnects", s.Reconnects)
	yield("tcp_retransmit_frames", s.RetransmitFrames)
	yield("tcp_clock_samples", s.ClockSamples)
	// Per-peer clock-sync gauges, exported only once a sample exists so
	// dashboards can distinguish "no estimate" from "zero offset".
	for peer, lk := range b.links {
		if lk == nil {
			continue
		}
		if off, rtt, ok := b.ClockOffset(peer); ok {
			yield(fmt.Sprintf("tcp_peer%d_clock_offset_ns", peer), off)
			yield(fmt.Sprintf("tcp_peer%d_clock_rtt_ns", peer), rtt)
		}
	}
}
