package tcp

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/core"
)

// Link state machine and recovery plane.
//
// Each peer connection is owned by a link. A connection generation is
// installed by installConn (initial dial, accept, or reconnect) and
// retired by lostConn (read/write error, Sever, heartbeat-declared
// silence). Recovery follows the mesh roles: the lower rank redials,
// the higher rank waits for the dial-in on the persistent accept
// loop. Both sides quiesce the dead connection's reader *before*
// handshaking, which makes the applied-write count each side reports
// exact — the peer trims its retransmit window to that count, so a
// signaled write is applied exactly once no matter where the old
// connection died. When ReconnectWindow expires without a new
// connection the peer is declared down: terminal, and everything in
// flight or queued toward it fails with core.ErrPeerDown.

// link is one peer's connection slot.
type link struct {
	peer int

	//photon:lock tcplink 30
	mu          sync.Mutex
	cond        *sync.Cond // conn installed / link down / backend closed
	conn        net.Conn
	gen         uint64        // connection generation; bumped by installConn
	readerDone  chan struct{} // closed when this generation's reader exits
	needRetx    bool          // writer must replay the window before new frames
	sentApplied uint64        // applied count we reported in this conn's handshake
	redialing   bool          // a recovery supervisor owns the link
	downErr     error

	genA       atomic.Uint64 // gen mirror for lock-free staleness checks
	down       atomic.Bool   // terminal
	recovering atomic.Bool   // redialing mirror for lock-free health reads

	//photon:lock tcphs 10
	hsMu      sync.Mutex    // serializes inbound handshakes for this link
	installed chan struct{} // cap 1: kicked on installConn (supervisor wakeup)
	reconn    chan struct{} // cap 1: kicked on install/down (writer wakeup)

	lastRx atomic.Int64 // nowNano of the last frame header read from peer
	lastTx atomic.Int64 // nowNano of the last successful flush toward peer

	// Clock-sync state fed by heartbeat exchanges (wall-clock UnixNano).
	// hbPeerTx/hbPeerRx remember the peer's last heartbeat tx stamp and
	// our receipt time, echoed back on our next heartbeat to close the
	// NTP-style exchange. clockOff/clockRTT hold the best (minimum-RTT)
	// offset sample: peer wall clock minus ours, in nanoseconds.
	hbPeerTx atomic.Int64
	hbPeerRx atomic.Int64
	clockOff atomic.Int64
	clockRTT atomic.Int64 // 0 = no sample yet
}

func newLink(peer int) *link {
	lk := &link{
		peer:      peer,
		installed: make(chan struct{}, 1),
		reconn:    make(chan struct{}, 1),
	}
	lk.cond = sync.NewCond(&lk.mu)
	return lk
}

// awaitConn blocks until a connection is installed, the link is down,
// or the backend closes. It hands out the generation, whether the
// window must be retransmitted first (clearing the flag), and the
// conveyed-ack floor from the handshake.
func (lk *link) awaitConn(b *Backend) (conn net.Conn, gen uint64, needRetx bool, conveyed uint64, ok bool) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	for {
		if b.isClosed() || lk.down.Load() {
			return nil, 0, false, 0, false
		}
		if lk.conn != nil {
			nr := lk.needRetx
			lk.needRetx = false
			return lk.conn, lk.gen, nr, lk.sentApplied, true
		}
		lk.cond.Wait()
	}
}

// acceptLoop accepts for the life of the backend: initial mesh
// connections from lower ranks and any later reconnects.
func (b *Backend) acceptLoop() {
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			if b.isClosed() {
				return
			}
			select {
			case <-b.closed:
				return
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		go b.handleInbound(conn)
	}
}

// handleInbound runs the acceptor side of the handshake for an
// initial or reconnecting lower-rank peer. Any previous connection is
// retired and its reader quiesced before we report our applied count:
// recvSeqW must be final, or the peer would trim its retransmit
// window to a count that is still moving.
func (b *Backend) handleInbound(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(b.cfg.DialTimeout))
	peer, _, peerApplied, err := readHello(conn)
	if err != nil || peer < 0 || peer >= b.rank {
		conn.Close()
		return
	}
	lk := b.links[peer]
	lk.hsMu.Lock()
	defer lk.hsMu.Unlock()
	if lk.down.Load() || b.isClosed() {
		conn.Close()
		return
	}
	lk.mu.Lock()
	old, oldRd := lk.conn, lk.readerDone
	lk.conn = nil
	lk.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if oldRd != nil {
		//photon:allow lockorder -- handshake serialization: hsMu must stay held while the old reader drains; Close unblocks via b.closed
		select {
		case <-oldRd:
		case <-b.closed:
			conn.Close()
			return
		}
		// The old connection is fully drained; responses that did not
		// arrive on it never will (reads/atomics are not replayed).
		b.failSentResp(peer)
	}
	sent := b.recvSeqW[peer].Load()
	if err := writeHello(conn, b.rank, 0, sent); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	b.installConn(peer, conn, peerApplied, sent)
}

// installConn activates a handshaken connection: the send window is
// trimmed to what the peer reports applied (completing those signaled
// writes), the generation advances, and a fresh reader starts. The
// writer observes the new generation via awaitConn and replays the
// remaining window before any new frames.
func (b *Backend) installConn(peer int, conn net.Conn, peerApplied, sentApplied uint64) bool {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	b.applyCumAck(peer, peerApplied, nil)
	lk := b.links[peer]
	lk.mu.Lock()
	if lk.down.Load() || b.isClosed() {
		lk.mu.Unlock()
		conn.Close()
		return false
	}
	lk.gen++
	gen := lk.gen
	lk.conn = conn
	lk.needRetx = true
	lk.sentApplied = sentApplied
	rd := make(chan struct{})
	lk.readerDone = rd
	lk.redialing = false
	lk.recovering.Store(false)
	lk.genA.Store(gen)
	now := nowNano()
	lk.lastRx.Store(now)
	lk.lastTx.Store(now)
	lk.cond.Broadcast()
	lk.mu.Unlock()
	if gen > 1 {
		b.cstats[peer].reconnects.Add(1)
	}
	nudge(lk.installed)
	nudge(lk.reconn)
	go b.reader(peer, conn, gen, rd)
	return true
}

// lostConn retires a dead connection generation (idempotent per
// generation) and starts the recovery supervisor. Callable from the
// reader (socket error), the writer (flush error), Sever, and the
// heartbeat monitor.
func (b *Backend) lostConn(peer int, gen uint64, cause error) {
	lk := b.links[peer]
	lk.mu.Lock()
	if lk.gen != gen || lk.conn == nil || lk.down.Load() {
		lk.mu.Unlock()
		return
	}
	conn := lk.conn
	lk.conn = nil
	rd := lk.readerDone
	start := !lk.redialing
	lk.redialing = true
	lk.recovering.Store(true)
	lk.mu.Unlock()
	conn.Close()
	if start {
		go b.reconnect(peer, rd, cause)
	}
}

// reconnect is the per-loss recovery supervisor: quiesce the dead
// connection's reader, fail the non-idempotent in-flight ops, then
// either redial (lower rank) or wait for the peer's redial (higher
// rank) inside ReconnectWindow. Expiry declares the peer down.
func (b *Backend) reconnect(peer int, readerDone chan struct{}, cause error) {
	select {
	case <-readerDone:
	case <-b.closed:
		return
	}
	b.failSentResp(peer)
	if cause == nil {
		cause = fmt.Errorf("tcp: connection to rank %d lost", peer)
	}
	window := b.cfg.ReconnectWindow
	if window < 0 {
		b.markDown(peer, cause)
		return
	}
	deadline := time.Now().Add(window)
	if peer < b.rank {
		b.awaitRedial(peer, deadline, cause)
		return
	}

	// Dialer role: bounded exponential backoff with jitter. The rand
	// source is seeded from (rank, peer, generation), so a chaos run
	// replays its exact redial schedule.
	lk := b.links[peer]
	rng := rand.New(rand.NewSource(int64(b.rank)<<40 ^ int64(peer)<<20 ^ int64(lk.genA.Load())))
	backoff := b.cfg.ReconnectBackoff
	for {
		if b.isClosed() {
			return
		}
		if time.Now().After(deadline) {
			b.markDown(peer, cause)
			return
		}
		budget := time.Until(deadline)
		if budget > b.cfg.DialTimeout {
			budget = b.cfg.DialTimeout
		}
		conn, err := net.DialTimeout("tcp", b.cfg.Addrs[peer], budget)
		if err == nil {
			applied, sent, herr := b.clientHandshake(conn, peer)
			if herr == nil {
				b.installConn(peer, conn, applied, sent)
				return
			}
			conn.Close()
		}
		sleep := backoff + time.Duration(rng.Int63n(int64(backoff)+1))
		select {
		case <-b.closed:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// awaitRedial is the acceptor-side supervisor: the lower rank owns the
// dial, so this side only waits for handleInbound to reinstall the
// link — or declares the peer down at the deadline.
func (b *Backend) awaitRedial(peer int, deadline time.Time, cause error) {
	lk := b.links[peer]
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	for {
		lk.mu.Lock()
		live := lk.conn != nil
		lk.mu.Unlock()
		if live {
			return
		}
		select {
		case <-b.closed:
			return
		case <-t.C:
			b.markDown(peer, cause)
			return
		case <-lk.installed:
		}
	}
}

// markDown latches a peer down (terminal) and fails everything in
// flight toward it: the retransmit window, parked response buffers,
// and — via the writer's drain mode — whatever is still queued.
func (b *Backend) markDown(peer int, cause error) {
	lk := b.links[peer]
	lk.mu.Lock()
	if lk.down.Load() || b.isClosed() {
		lk.mu.Unlock()
		return
	}
	err := fmt.Errorf("tcp: rank %d unreachable (%v): %w", peer, cause, core.ErrPeerDown)
	lk.downErr = err
	lk.down.Store(true)
	lk.redialing = false
	lk.recovering.Store(false)
	conn := lk.conn
	lk.conn = nil
	lk.cond.Broadcast()
	lk.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	nudge(lk.reconn)
	for _, tok := range b.windows[peer].drainAll(nil) {
		b.pushComp(core.BackendCompletion{Token: tok, OK: false, Err: err})
	}
	b.failPend(peer, err)
	b.kick()
}

// failSentResp fails the response-keyed ops (reads, atomics) that hit
// the wire on a now-dead connection. Their responses may have been
// lost and the requests cannot be replayed, so they complete with
// core.ErrPeerDown even when the link itself recovers.
func (b *Backend) failSentResp(peer int) {
	b.pendMu.Lock()
	sr := b.sentResp[peer]
	b.sentResp[peer] = nil
	var toks []uint64
	for tok := range sr {
		if _, ok := b.pendBuf[tok]; ok {
			delete(b.pendBuf, tok)
			toks = append(toks, tok)
		}
	}
	b.pendMu.Unlock()
	if len(toks) == 0 {
		return
	}
	err := fmt.Errorf("tcp: rank %d link reset; op not replayable: %w", peer, core.ErrPeerDown)
	for _, tok := range toks {
		b.pushComp(core.BackendCompletion{Token: tok, OK: false, Err: err})
	}
}

// failPend fails every parked response buffer toward peer (markDown:
// sent or not, none will ever complete).
func (b *Backend) failPend(peer int, err error) {
	b.pendMu.Lock()
	b.sentResp[peer] = nil
	var toks []uint64
	for tok, pd := range b.pendBuf {
		if pd.rank == peer {
			delete(b.pendBuf, tok)
			toks = append(toks, tok)
		}
	}
	b.pendMu.Unlock()
	for _, tok := range toks {
		b.pushComp(core.BackendCompletion{Token: tok, OK: false, Err: err})
	}
}

// Sever forcibly closes the live connection toward peer, simulating a
// network cut (test hook; the chaos harness and recovery tests drive
// it). The link recovers through the normal reconnect path.
func (b *Backend) Sever(peer int) {
	if peer < 0 || peer >= b.size || peer == b.rank {
		return
	}
	lk := b.links[peer]
	lk.mu.Lock()
	conn := lk.conn
	lk.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// PeerDowned reports whether the transport has latched peer down
// (test/diagnostic hook).
func (b *Backend) PeerDowned(peer int) bool {
	return peer >= 0 && peer < b.size && peer != b.rank && b.links[peer].down.Load()
}

// ---------------------------------------------------------------------
// Liveness plane (core.HealthBackend).
// ---------------------------------------------------------------------

// ConfigureLiveness arms heartbeats: every interval, each live link
// that has not sent traffic recently pushes a 1-byte heartbeat frame
// (piggyback suppression — data already proves liveness), and a link
// silent past twice the suspect window is severed so the reconnect
// path can take over (a half-open TCP connection never errors on its
// own).
func (b *Backend) ConfigureLiveness(heartbeat, suspectAfter time.Duration) {
	if heartbeat <= 0 {
		return
	}
	b.hbOnce.Do(func() {
		if suspectAfter <= 0 {
			suspectAfter = 4 * heartbeat
		}
		now := nowNano()
		for _, lk := range b.links {
			if lk != nil {
				lk.lastRx.Store(now)
				lk.lastTx.Store(now)
			}
		}
		b.suspectNS.Store(int64(suspectAfter))
		b.hbNS.Store(int64(heartbeat))
		go b.heartbeatLoop(heartbeat, suspectAfter)
	})
}

// PeerHealth reports the transport's view of a peer's liveness.
func (b *Backend) PeerHealth(rank int) core.PeerHealth {
	if rank < 0 || rank >= b.size {
		return core.PeerDown
	}
	if rank == b.rank {
		return core.PeerHealthy
	}
	lk := b.links[rank]
	switch {
	case lk.down.Load():
		return core.PeerDown
	case lk.recovering.Load():
		return core.PeerRecovering
	}
	if s := b.suspectNS.Load(); s > 0 && nowNano()-lk.lastRx.Load() > s {
		return core.PeerSuspect
	}
	return core.PeerHealthy
}

// handleHeartbeatSync processes the clock-sync fields of an inbound v4
// heartbeat from peer. The frame's tx stamp and our receipt time are
// remembered for the echo on our next heartbeat; when the frame echoes
// one of our own earlier heartbeats, the four timestamps close an
// NTP-style exchange and yield an offset/RTT sample. Only the
// minimum-RTT sample is kept — queueing delay inflates both legs, and
// the tightest round trip bounds the offset error by rtt/2.
func (b *Backend) handleHeartbeatSync(peer int, f []byte) {
	t3 := time.Now().UnixNano()
	t2 := int64(binary.LittleEndian.Uint64(f[1:]))  // peer's send time
	t0 := int64(binary.LittleEndian.Uint64(f[9:]))  // our echoed tx
	t1 := int64(binary.LittleEndian.Uint64(f[17:])) // peer's receipt of it
	lk := b.links[peer]
	lk.hbPeerTx.Store(t2)
	lk.hbPeerRx.Store(t3)
	if t0 == 0 || t1 == 0 {
		return // no exchange closed yet (peer hasn't heard us)
	}
	rtt := (t3 - t0) - (t2 - t1)
	if rtt < 0 {
		return // clock stepped mid-exchange; discard
	}
	if best := lk.clockRTT.Load(); best == 0 || rtt < best {
		lk.clockOff.Store(((t1 - t0) + (t2 - t3)) / 2)
		lk.clockRTT.Store(rtt)
		b.cstats[peer].clockSamples.Add(1)
	}
}

// ClockOffset reports the best clock-offset estimate toward peer: the
// peer's wall clock minus this process's, in nanoseconds, with the RTT
// of the sample that produced it. ok is false until at least one
// heartbeat exchange has completed (heartbeats must be armed via
// ConfigureLiveness, and suppression means busy links sample rarely).
// The offset feeds trace.PeerDump.OffsetNS when merging per-process
// trace rings into one cluster timeline.
func (b *Backend) ClockOffset(peer int) (offsetNS, rttNS int64, ok bool) {
	if peer < 0 || peer >= b.size || peer == b.rank {
		return 0, 0, peer == b.rank && peer >= 0
	}
	lk := b.links[peer]
	rtt := lk.clockRTT.Load()
	if rtt == 0 {
		return 0, 0, false
	}
	return lk.clockOff.Load(), rtt, true
}

func (b *Backend) heartbeatLoop(hb, suspectAfter time.Duration) {
	tick := time.NewTicker(hb)
	defer tick.Stop()
	for {
		select {
		case <-b.closed:
			return
		case <-tick.C:
		}
		now := nowNano()
		for peer, lk := range b.links {
			if lk == nil || lk.down.Load() {
				continue
			}
			lk.mu.Lock()
			conn := lk.conn
			lk.mu.Unlock()
			if conn == nil {
				continue
			}
			if now-lk.lastRx.Load() > 2*int64(suspectAfter) {
				// Declared silent: sever so recovery takes over.
				conn.Close()
				continue
			}
			if now-lk.lastTx.Load() < int64(hb) {
				continue // suppressed: recent traffic already proves liveness
			}
			// Ride the reply path: FIFO keeps any queued nack ahead of
			// this frame's stamp, and the stamp doubles as an ack. The
			// body carries this side's wall clock plus an echo of the
			// peer's last heartbeat, closing one NTP-style exchange.
			hb := make([]byte, hbBodyLen)
			hb[0] = opHeartbeat
			binary.LittleEndian.PutUint64(hb[1:], uint64(time.Now().UnixNano()))
			binary.LittleEndian.PutUint64(hb[9:], uint64(lk.hbPeerTx.Load()))
			binary.LittleEndian.PutUint64(hb[17:], uint64(lk.hbPeerRx.Load()))
			b.replyQueueFor(peer).push(replyFrame{
				data:  hb,
				stamp: b.recvSeqW[peer].Load(),
			})
			b.cstats[peer].heartbeats.Add(1)
		}
	}
}
