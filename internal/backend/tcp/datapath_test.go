package tcp

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"photon/internal/core"
)

// --- replyQueue retention / compaction ---

// TestReplyQueueNoRetention is the regression test for the pop path:
// a popped frame's slot in the backing array must be cleared, or the
// array pins every response payload ever queued until the next
// reallocation (reads of large buffers would accumulate as garbage
// the GC cannot reclaim).
func TestReplyQueueNoRetention(t *testing.T) {
	rq := newReplyQueue()
	rq.push(replyFrame{data: make([]byte, 1<<20)})
	rq.push(replyFrame{data: make([]byte, 1<<20)})
	rq.push(replyFrame{data: []byte("tail")})

	for i := 0; i < 2; i++ {
		if _, ok := rq.pop(); !ok {
			t.Fatalf("pop %d: queue empty", i)
		}
	}
	rq.mu.Lock()
	for i := 0; i < rq.head; i++ {
		if rq.q[i].data != nil {
			t.Fatalf("popped slot %d still references its payload", i)
		}
	}
	rq.mu.Unlock()

	// Draining the queue must reset it to reuse the array from the
	// start rather than appending past a stale head forever.
	if f, ok := rq.pop(); !ok || string(f.data) != "tail" {
		t.Fatalf("tail pop = %q, %v", f.data, ok)
	}
	rq.mu.Lock()
	if rq.head != 0 || len(rq.q) != 0 {
		t.Fatalf("drained queue not reset: head=%d len=%d", rq.head, len(rq.q))
	}
	rq.mu.Unlock()
}

// TestReplyQueueCompaction exercises the sustained-backlog path: once
// enough slots have been popped, the live tail is copied down so the
// dead prefix is released instead of growing without bound.
func TestReplyQueueCompaction(t *testing.T) {
	rq := newReplyQueue()
	const n = 600
	for i := 0; i < n; i++ {
		rq.push(replyFrame{data: []byte{byte(i)}, stamp: uint64(i)})
	}
	for i := 0; i < n/2; i++ {
		f, ok := rq.pop()
		if !ok || f.stamp != uint64(i) {
			t.Fatalf("pop %d = stamp %d, %v", i, f.stamp, ok)
		}
	}
	rq.mu.Lock()
	head, length := rq.head, len(rq.q)
	rq.mu.Unlock()
	if head != 0 || length != n/2 {
		t.Fatalf("no compaction after %d pops: head=%d len=%d", n/2, head, length)
	}
	// FIFO order must survive compaction.
	for i := n / 2; i < n; i++ {
		f, ok := rq.pop()
		if !ok || f.stamp != uint64(i) {
			t.Fatalf("post-compaction pop = stamp %d, %v (want %d)", f.stamp, ok, i)
		}
	}
}

// --- backend-level harness ---

// newBackendPair boots two connected TCP backends over loopback.
func newBackendPair(t *testing.T, cfg Config) [2]*Backend {
	t.Helper()
	var lns [2]net.Listener
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var bes [2]*Backend
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := cfg
			c.Rank = r
			c.Addrs = addrs
			c.Listener = lns[r]
			bes[r], errs[r] = New(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, be := range bes {
			if be != nil {
				be.Close()
			}
		}
	})
	return bes
}

// waitComps polls be until want completions arrive or the deadline
// passes, parking on the backend's Notify channel between polls.
func waitComps(t *testing.T, be *Backend, want int) []core.BackendCompletion {
	t.Helper()
	var got []core.BackendCompletion
	buf := make([]core.BackendCompletion, 64)
	deadline := time.Now().Add(20 * time.Second)
	for len(got) < want {
		n := be.Poll(buf)
		got = append(got, buf[:n]...)
		if n == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("timeout: %d/%d completions", len(got), want)
			}
			select {
			case <-be.Notify():
			case <-time.After(time.Millisecond):
			}
		}
	}
	return got
}

// --- pipelined stress: coalescing and cumulative acks under load ---

// TestTCPPipelinedStress drives bidirectional pipelined writes, reads,
// and atomics between two ranks and then checks the data path actually
// coalesced: multiple frames per Write syscall, cumulative acks
// covering many signaled writes per ack event, and a nonzero share of
// acks piggybacked on data-bearing flushes. Run under -race in CI.
func TestTCPPipelinedStress(t *testing.T) {
	bes := newBackendPair(t, Config{})
	const (
		ops    = 400
		window = 64
		size   = 4096
	)
	var sinks [2][]byte
	var descs [2]struct {
		addr uint64
		rkey uint32
	}
	for r := 0; r < 2; r++ {
		sinks[r] = make([]byte, 1<<20)
		rb, _, err := bes[r].Register(sinks[r])
		if err != nil {
			t.Fatal(err)
		}
		descs[r] = struct {
			addr uint64
			rkey uint32
		}{rb.Addr, rb.RKey}
	}

	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			peer := 1 - r
			src := bytes.Repeat([]byte{byte(r + 1)}, size)
			resBufs := make([][]byte, 0, ops/8+1)
			inflight, completed, posted := 0, 0, 0
			buf := make([]core.BackendCompletion, 64)
			reap := func() {
				n := bes[r].Poll(buf)
				for _, c := range buf[:n] {
					if !c.OK {
						t.Errorf("rank %d: op %d failed: %v", r, c.Token, c.Err)
					}
				}
				inflight -= n
				completed += n
			}
			for posted < ops {
				for inflight >= window {
					reap()
				}
				tok := uint64(posted + 1)
				var err error
				switch {
				case posted%16 == 7:
					res := make([]byte, 8)
					resBufs = append(resBufs, res)
					err = bes[r].PostFetchAdd(peer, res, descs[peer].addr+uint64(size), descs[peer].rkey, 1, tok)
				case posted%8 == 3:
					res := make([]byte, size)
					resBufs = append(resBufs, res)
					err = bes[r].PostRead(peer, res, descs[peer].addr, descs[peer].rkey, tok)
				default:
					err = bes[r].PostWrite(peer, src, descs[peer].addr+uint64(posted%4)*size, descs[peer].rkey, tok, true)
				}
				if err == core.ErrWouldBlock {
					reap()
					continue
				}
				if err != nil {
					t.Errorf("rank %d post %d: %v", r, posted, err)
					return
				}
				posted++
				inflight++
			}
			for completed < ops {
				reap()
				if inflight > 0 {
					select {
					case <-bes[r].Notify():
					case <-time.After(time.Millisecond):
					}
				}
			}
		}(r)
	}
	wg.Wait()

	for r := 0; r < 2; r++ {
		s := bes[r].Stats()
		if s.FramesPerFlush() <= 1.0 {
			t.Errorf("rank %d: frames/flush = %.2f, want > 1 (no coalescing happened): %+v", r, s.FramesPerFlush(), s)
		}
		if s.AckFramesSent >= s.SignaledAcked {
			t.Errorf("rank %d: %d standalone ack frames for %d acked writes, want cumulative acks to cover several writes each",
				r, s.AckFramesSent, s.SignaledAcked)
		}
		if s.AcksPiggybacked == 0 {
			t.Errorf("rank %d: no acks piggybacked on data frames under bidirectional load", r)
		}
		if s.NacksSent != 0 {
			t.Errorf("rank %d: unexpected nacks: %d", r, s.NacksSent)
		}
	}
}

// --- slow reader backpressure ---

// TestTCPSlowReaderBackpressure stalls the target's reader (by holding
// the registration lock its apply path needs) while the initiator
// floods large writes. The flood must surface as ErrWouldBlock at the
// initiator — bounded queues, no unbounded buffering — and every write
// must still complete once the reader resumes.
func TestTCPSlowReaderBackpressure(t *testing.T) {
	bes := newBackendPair(t, Config{SendDepth: 8})
	sink := make([]byte, 1<<20)
	rb, _, err := bes[1].Register(sink)
	if err != nil {
		t.Fatal(err)
	}

	// Stall rank 1's reader: its next opWrite apply blocks on memMu.
	bes[1].memMu.Lock()
	release := time.AfterFunc(100*time.Millisecond, bes[1].memMu.Unlock)
	defer release.Stop()

	const ops = 64
	src := make([]byte, 64<<10)
	wouldBlock := 0
	for posted := 0; posted < ops; {
		err := bes[0].PostWrite(1, src, rb.Addr, rb.RKey, uint64(posted+1), true)
		if err == core.ErrWouldBlock {
			wouldBlock++
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		posted++
	}
	if wouldBlock == 0 {
		t.Error("4MiB flood against a stalled reader never hit ErrWouldBlock; send queue is not applying backpressure")
	}
	comps := waitComps(t, bes[0], ops)
	for _, c := range comps {
		if !c.OK {
			t.Fatalf("write %d failed: %v", c.Token, c.Err)
		}
	}
}

// --- mixed-kind completion ordering ---

// TestTCPAckOrderingMixed pipelines a deliberately awkward interleaving
// toward one peer — signaled writes (one with a bad rkey, which must
// come back as a nacked error), unsignaled writes, reads, and atomics —
// without waiting in between, then asserts the completions arrive in
// exact posting order with the right status. This is the backend
// contract the engine builds on: per-rank posting order, and a
// signaled completion implying everything earlier completed.
func TestTCPAckOrderingMixed(t *testing.T) {
	bes := newBackendPair(t, Config{})
	sink := make([]byte, 4096)
	rb, lk, err := bes[1].Register(sink)
	if err != nil {
		t.Fatal(err)
	}

	type step struct {
		kind string
		tok  uint64
		ok   bool
	}
	var plan []step
	var resBufs [][]byte
	post := func(kind string, tok uint64, ok bool, f func() error) {
		t.Helper()
		for {
			err := f()
			if err == core.ErrWouldBlock {
				continue
			}
			if err != nil {
				t.Fatalf("post %s tok %d: %v", kind, tok, err)
			}
			break
		}
		plan = append(plan, step{kind, tok, ok})
	}

	payload := []byte("ordering probe payload")
	for round := 0; round < 50; round++ {
		base := uint64(round * 10)
		post("write", base+1, true, func() error {
			return bes[0].PostWrite(1, payload, rb.Addr, rb.RKey, base+1, true)
		})
		res := make([]byte, len(payload))
		resBufs = append(resBufs, res)
		post("read", base+2, true, func() error {
			return bes[0].PostRead(1, res, rb.Addr, rb.RKey, base+2)
		})
		post("badwrite", base+3, false, func() error {
			return bes[0].PostWrite(1, payload, rb.Addr, 0xdead, base+3, true)
		})
		fres := make([]byte, 8)
		resBufs = append(resBufs, fres)
		post("fadd", base+4, true, func() error {
			return bes[0].PostFetchAdd(1, fres, rb.Addr+1024, rb.RKey, 1, base+4)
		})
		// Unsignaled write: no completion, but later signaled ops must
		// still ack past it correctly.
		for {
			err := bes[0].PostWrite(1, payload, rb.Addr+2048, rb.RKey, 0, false)
			if err == core.ErrWouldBlock {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		post("write", base+5, true, func() error {
			return bes[0].PostWrite(1, payload, rb.Addr, rb.RKey, base+5, true)
		})
	}

	comps := waitComps(t, bes[0], len(plan))
	for i, c := range comps {
		want := plan[i]
		if c.Token != want.tok || c.OK != want.ok {
			t.Fatalf("completion %d = tok %d ok=%v, want %s tok %d ok=%v",
				i, c.Token, c.OK, want.kind, want.tok, want.ok)
		}
	}
	lk.Lock()
	ok := bytes.Equal(sink[:len(payload)], payload) && bytes.Equal(sink[2048:2048+len(payload)], payload)
	lk.Unlock()
	if !ok {
		t.Fatal("payloads not visible at target")
	}
	if n := bes[1].Stats().NacksSent; n != 50 {
		t.Errorf("target nacks = %d, want 50", n)
	}
	_ = resBufs // result buffers stay owned by the backend until completion
}
