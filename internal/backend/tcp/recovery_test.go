package tcp_test

import (
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"photon/internal/backend/chaos"
	"photon/internal/backend/tcp"
	"photon/internal/core"
	"photon/internal/flight"
	"photon/internal/trace"
)

// newFTJob boots n ranks like newTCPJob but exposes the backends (for
// Sever/stats) and lets the test tune the transport's recovery knobs.
func newFTJob(t *testing.T, n int, cfg core.Config, tune func(*tcp.Config)) ([]*tcp.Backend, []*core.Photon) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	bes := make([]*tcp.Backend, n)
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tc := tcp.Config{Rank: r, Addrs: addrs, Listener: lns[r]}
			if tune != nil {
				tune(&tc)
			}
			be, err := tcp.New(tc)
			if err != nil {
				errs[r] = err
				return
			}
			bes[r] = be
			phs[r], errs[r] = core.Init(be, cfg)
		}(r)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, p := range phs {
			if p != nil {
				p.Close()
			}
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return bes, phs
}

// ridPayload builds a self-describing payload so the receiver can
// detect any corruption or cross-wiring of RIDs.
func ridPayload(i uint64) []byte {
	p := make([]byte, 9)
	binary.LittleEndian.PutUint64(p, i)
	p[8] = byte(i * 7)
	return p
}

func checkRIDPayload(t *testing.T, rid uint64, data []byte) {
	t.Helper()
	if len(data) != 9 || binary.LittleEndian.Uint64(data) != rid || data[8] != byte(rid*7) {
		t.Fatalf("corrupted payload for RID %d: %v", rid, data)
	}
}

// TestTCPClockOffsetEstimated checks the heartbeat-piggybacked clock
// sync: with heartbeats armed, both ranks converge on an offset
// estimate for each other. The two ranks share one process clock, so
// the estimate must land near zero with a positive RTT behind it.
func TestTCPClockOffsetEstimated(t *testing.T) {
	_, phs := newFTJob(t, 2, core.Config{HeartbeatInterval: 10 * time.Millisecond}, nil)
	deadline := time.Now().Add(waitT)
	for {
		phs[0].Progress()
		phs[1].Progress()
		off, rtt, ok := phs[0].PeerClockOffset(1)
		if ok {
			if rtt <= 0 {
				t.Fatalf("clock sample has non-positive RTT %d", rtt)
			}
			// Same host, same process: the loopback offset estimate
			// must be far below a second (it is typically < 1ms).
			if off > int64(time.Second) || off < -int64(time.Second) {
				t.Fatalf("loopback clock offset %dns implausibly large", off)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no clock offset estimate after heartbeat exchange")
		}
		time.Sleep(time.Millisecond)
	}
	// The self estimate is trivially synchronized.
	if off, rtt, ok := phs[0].PeerClockOffset(0); !ok || off != 0 || rtt != 0 {
		t.Fatalf("self clock offset = (%d, %d, %v), want (0, 0, true)", off, rtt, ok)
	}
}

// The PR's acceptance test: sever the live connection twice in the
// middle of a signaled burst. Every send must complete exactly once —
// the receiver harvests RIDs 1..n strictly in order with intact
// payloads and nothing extra — because the send window retransmits
// everything above the peer's handshake-reported cumAck and nothing
// below it.
func TestTCPSeverMidBurstRecovers(t *testing.T) {
	bes, phs := newFTJob(t, 2, core.Config{LedgerSlots: 128}, func(c *tcp.Config) {
		c.ReconnectBackoff = 2 * time.Millisecond
		c.ReconnectWindow = 10 * time.Second
	})
	const n = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= n; i++ {
			rc, err := phs[1].WaitRemote(i, waitT)
			if err != nil {
				t.Errorf("RID %d never delivered: %v", i, err)
				return
			}
			if len(rc.Data) != 9 || binary.LittleEndian.Uint64(rc.Data) != i || rc.Data[8] != byte(i*7) {
				t.Errorf("corrupted payload for RID %d: %v", i, rc.Data)
				return
			}
		}
	}()
	for i := uint64(1); i <= n; i++ {
		if i == n/4 || i == 3*n/4 {
			bes[0].Sever(1) // kill the live socket mid-burst
		}
		for {
			err := phs[0].Send(1, ridPayload(i), i, i)
			if err == nil {
				break
			}
			if errors.Is(err, core.ErrWouldBlock) {
				phs[0].Progress()
				continue
			}
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		c, err := phs[0].WaitLocal(i, waitT)
		if err != nil {
			t.Fatalf("send %d local completion wedged: %v", i, err)
		}
		if c.Err != nil {
			t.Fatalf("send %d failed: %v (peer was only severed, not killed)", i, c.Err)
		}
	}
	wg.Wait()
	// Exactly once: nothing may trail in after the full sequence.
	for k := 0; k < 200; k++ {
		phs[1].Progress()
		if c, ok := phs[1].PopRemote(); ok {
			t.Fatalf("duplicate delivery after complete burst: RID %d", c.RID)
		}
	}
	if bes[0].Stats().Reconnects == 0 {
		t.Fatal("sever did not force a reconnect; test drove nothing")
	}
}

// A permanently dead peer must not strand anyone: waiters resolve with
// ErrPeerDown or ErrTimeout within the deadline bound, fresh posts
// fail fast once the down state latches, and the engine's health view
// reports PeerDown.
func TestTCPPeerKillSurfacesPeerDown(t *testing.T) {
	bes, phs := newFTJob(t, 2, core.Config{
		OpTimeout:         400 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
	}, func(c *tcp.Config) {
		c.ReconnectWindow = 150 * time.Millisecond
		c.ReconnectBackoff = 10 * time.Millisecond
	})
	for i := uint64(1); i <= 4; i++ {
		_ = phs[0].Send(1, ridPayload(i), i, i)
	}
	phs[1].Close() // peer dies for good: listener and socket both gone
	start := time.Now()
	for i := uint64(1); i <= 4; i++ {
		c, err := phs[0].WaitLocal(i, 4*time.Second)
		if err != nil {
			t.Fatalf("waiter %d wedged after peer death: %v", i, err)
		}
		if c.Err != nil && !errors.Is(c.Err, core.ErrPeerDown) && !errors.Is(c.Err, core.ErrTimeout) {
			t.Fatalf("waiter %d: unexpected error %v", i, c.Err)
		}
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("waiters took %v to resolve, want within the 2×OpTimeout bound (plus reconnect window)", el)
	}
	// The transport latches the peer down once the reconnect window
	// expires; posts then fail fast instead of queueing into the void.
	deadline := time.Now().Add(5 * time.Second)
	for !bes[0].PeerDowned(1) {
		if time.Now().After(deadline) {
			t.Fatal("transport never declared the dead peer down")
		}
		phs[0].Progress()
		time.Sleep(time.Millisecond)
	}
	if err := phs[0].Send(1, ridPayload(99), 99, 99); err != nil {
		if !errors.Is(err, core.ErrPeerDown) {
			t.Fatalf("post to dead peer: %v, want ErrPeerDown", err)
		}
	} else {
		c, werr := phs[0].WaitLocal(99, 4*time.Second)
		if werr != nil {
			t.Fatalf("post to dead peer never resolved: %v", werr)
		}
		if c.Err == nil {
			t.Fatal("post to dead peer completed OK")
		}
	}
	for phs[0].PeerHealthState(1) != core.PeerDown {
		if time.Now().After(deadline) {
			t.Fatalf("engine health never latched PeerDown: %v", phs[0].PeerHealthState(1))
		}
		phs[0].Progress()
		time.Sleep(time.Millisecond)
	}
}

// A chaos-grade peer death with the flight recorder armed must leave a
// non-empty black box: at least the terminal →down record, carrying
// trace events, the health table, and transport gauges — and the JSON
// dump must render it all.
func TestFlightRecorderCapturesPeerDown(t *testing.T) {
	ring := trace.NewRing(512)
	ring.Enable(true)
	_, phs := newFTJob(t, 2, core.Config{
		OpTimeout:         300 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		Trace:             ring,
		Metrics:           true,
		FlightRecords:     8,
		FlightWindow:      64,
	}, func(c *tcp.Config) {
		c.ReconnectWindow = 150 * time.Millisecond
		c.ReconnectBackoff = 10 * time.Millisecond
	})
	fr := phs[0].FlightRecorder()
	if fr == nil {
		t.Fatal("FlightRecords > 0 but FlightRecorder() is nil")
	}
	var hooked atomic.Int64
	fr.SetHook(func(flight.Record) { hooked.Add(1) })

	// Some traffic so the black box has events and histograms to show.
	for i := uint64(1); i <= 8; i++ {
		_ = phs[0].Send(1, ridPayload(i), i, i)
	}
	phs[0].Progress()
	phs[1].Close() // peer dies for good

	deadline := time.Now().Add(5 * time.Second)
	for phs[0].PeerHealthState(1) != core.PeerDown {
		if time.Now().After(deadline) {
			t.Fatalf("peer never latched down: %v", phs[0].PeerHealthState(1))
		}
		phs[0].Progress()
		time.Sleep(time.Millisecond)
	}

	recs := fr.Records()
	if len(recs) == 0 {
		t.Fatal("peer down produced an empty flight recorder")
	}
	if hooked.Load() != int64(len(recs)) {
		t.Fatalf("hook fired %d times for %d records", hooked.Load(), len(recs))
	}
	last := recs[len(recs)-1]
	if last.To != "down" || last.Peer != 1 {
		t.Fatalf("last record is %s→%s for peer %d, want →down for peer 1",
			last.From, last.To, last.Peer)
	}
	if len(last.Events) == 0 {
		t.Fatal("down record carries no trace events")
	}
	if len(last.Health) != 1 || last.Health[0].State != "down" || last.Health[0].LastTransitionNS == 0 {
		t.Fatalf("down record health table wrong: %+v", last.Health)
	}
	if _, ok := last.Gauges["tcp_reconnects"]; !ok {
		t.Fatalf("down record missing transport gauges: %v", last.Gauges)
	}
	if phs[0].PeerLastTransitionNS(1) == 0 {
		t.Fatal("PeerLastTransitionNS not stamped")
	}

	var b strings.Builder
	if err := phs[0].FlightDump(&b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	for _, want := range []string{`"to": "down"`, `"events"`, `"tcp_reconnects"`} {
		if !strings.Contains(dump, want) {
			t.Fatalf("flight dump missing %q:\n%s", want, dump)
		}
	}
}

// An idle but healthy link must stay healthy: heartbeats flow while no
// data does, so the suspect threshold is never crossed.
func TestTCPHeartbeatsKeepIdleLinkHealthy(t *testing.T) {
	bes, phs := newFTJob(t, 2, core.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      60 * time.Millisecond,
	}, nil)
	// Idle for many suspect windows, pumping progress so the engine's
	// health poll runs.
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		phs[0].Progress()
		phs[1].Progress()
		if h := phs[0].PeerHealthState(1); h != core.PeerHealthy {
			t.Fatalf("idle heartbeated link degraded to %v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if bes[0].Stats().Heartbeats == 0 && bes[1].Stats().Heartbeats == 0 {
		t.Fatal("no heartbeats sent on an idle link")
	}
}

// Concurrent posters racing Close must get ErrClosed (or survive the
// race cleanly) — never a send-on-closed-channel panic. This drives
// the backend directly so the posts hit the gather writer's queue with
// no engine serialization in front.
func TestTCPCloseRaceReturnsErrClosed(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	bes := make([]*tcp.Backend, 2)
	errs := make([]error, 2)
	var bwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		bwg.Add(1)
		go func(r int) {
			defer bwg.Done()
			bes[r], errs[r] = tcp.New(tcp.Config{Rank: r, Addrs: addrs, Listener: lns[r]})
		}(r)
	}
	bwg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer bes[1].Close()
	target := make([]byte, 4096)
	rb, _, err := bes[1].Register(target)
	if err != nil {
		t.Fatal(err)
	}
	var unexpected atomic.Value
	var wg sync.WaitGroup
	payload := []byte{1, 2, 3, 4}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]core.BackendCompletion, 16)
			for {
				err := bes[0].PostWrite(1, payload, rb.Addr, rb.RKey, 0, false)
				switch {
				case err == nil:
					continue
				case errors.Is(err, core.ErrClosed):
					return
				case errors.Is(err, core.ErrWouldBlock):
					bes[0].Poll(scratch)
					runtime.Gosched()
					continue
				default:
					unexpected.Store(err)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let the posters reach steady state
	bes[0].Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("posters wedged after Close")
	}
	if err := unexpected.Load(); err != nil {
		t.Fatalf("poster got %v, want only ErrClosed/ErrWouldBlock", err)
	}
	if err := bes[0].PostWrite(1, payload, rb.Addr, rb.RKey, 0, false); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("post after Close: %v, want ErrClosed", err)
	}
}

// Every failure-path counter the PR adds must surface as a gauge in
// Photon.Metrics() (photon-info -metrics renders the same snapshot and
// picks tcp_* up by prefix). The job is chaos-wrapped over real TCP so
// one run exercises all of them: idle heartbeats, a severed link
// forcing a reconnect (and usually retransmits), and a partition
// forcing the OpTimeout sweep.
func TestFailureMetricsExported(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	cfg := core.Config{
		Metrics:           true,
		OpTimeout:         100 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
	}
	phs := make([]*core.Photon, 2)
	errs := make([]error, 2)
	var cb *chaos.Backend
	var tb *tcp.Backend
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			be, err := tcp.New(tcp.Config{
				Rank: r, Addrs: addrs, Listener: lns[r],
				ReconnectBackoff: 2 * time.Millisecond,
			})
			if err != nil {
				errs[r] = err
				return
			}
			if r == 0 {
				tb = be
				cb = chaos.Wrap(be, chaos.Plan{Seed: 3})
				phs[r], errs[r] = core.Init(cb, cfg)
			} else {
				phs[r], errs[r] = core.Init(be, cfg)
			}
		}(r)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, p := range phs {
			if p != nil {
				p.Close()
			}
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Heartbeats: idle past several intervals.
	time.Sleep(60 * time.Millisecond)
	// Reconnect: sever the live socket, then prove traffic recovered.
	tb.Sever(1)
	for i := uint64(1); i <= 4; i++ {
		for {
			err := phs[0].Send(1, ridPayload(i), i, i)
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrWouldBlock) {
				t.Fatalf("send %d: %v", i, err)
			}
			phs[0].Progress()
		}
	}
	for i := uint64(1); i <= 4; i++ {
		if c, err := phs[0].WaitLocal(i, waitT); err != nil || c.Err != nil {
			t.Fatalf("send %d after sever: %v / %v", i, err, c.Err)
		}
	}
	// Timed-out op: partition at the post boundary so the transport
	// never sees the write and only the sweep can resolve the waiter.
	cb.Partition(1, true)
	if err := phs[0].Send(1, ridPayload(50), 50, 50); err != nil {
		t.Fatal(err)
	}
	if c, err := phs[0].WaitLocal(50, 4*time.Second); err != nil || !errors.Is(c.Err, core.ErrTimeout) {
		t.Fatalf("partitioned send: %v / %v, want ErrTimeout completion", err, c.Err)
	}
	snap := phs[0].Metrics()
	mustHave := []string{
		"ops_timed_out", "peer_suspect_transitions", "peers_down",
		"tcp_heartbeats", "tcp_reconnects", "tcp_retransmit_frames",
		"chaos_dropped",
	}
	for _, name := range mustHave {
		if _, ok := snap.Gauges.Get(name); !ok {
			t.Errorf("gauge %q missing from Metrics() snapshot", name)
		}
	}
	mustBePositive := map[string]bool{
		"ops_timed_out": true, "tcp_heartbeats": true, "tcp_reconnects": true,
		"chaos_dropped": true,
	}
	for name := range mustBePositive {
		if v, _ := snap.Gauges.Get(name); v <= 0 {
			t.Errorf("gauge %q = %d, want > 0 after the induced faults", name, v)
		}
	}
}

// The chaos harness over the real TCP transport: random drops at the
// post boundary leave holes the transport cannot see, so the engine's
// OpTimeout sweep is the only thing standing between a waiter and a
// hang. Every send must resolve; everything delivered must be intact.
func TestTCPChaosDropsResolve(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	cfg := core.Config{LedgerSlots: 64, OpTimeout: 200 * time.Millisecond}
	phs := make([]*core.Photon, 2)
	errs := make([]error, 2)
	var cb *chaos.Backend
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			be, err := tcp.New(tcp.Config{Rank: r, Addrs: addrs, Listener: lns[r]})
			if err != nil {
				errs[r] = err
				return
			}
			if r == 0 {
				cb = chaos.Wrap(be, chaos.Plan{Seed: 5, DropProb: 0.25})
				phs[r], errs[r] = core.Init(cb, cfg)
			} else {
				phs[r], errs[r] = core.Init(be, cfg)
			}
		}(r)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, p := range phs {
			if p != nil {
				p.Close()
			}
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	const n = 20
	for i := uint64(1); i <= n; i++ {
		_ = phs[0].Send(1, ridPayload(i), i, i)
		phs[0].Progress()
	}
	delivered := 0
	for i := uint64(1); i <= n; i++ {
		c, err := phs[0].WaitLocal(i, 4*time.Second)
		if err != nil {
			t.Fatalf("send %d wedged under drops: %v", i, err)
		}
		if c.Err == nil {
			delivered++
		} else if !errors.Is(c.Err, core.ErrTimeout) && !errors.Is(c.Err, core.ErrPeerDown) {
			t.Fatalf("send %d: unexpected error %v", i, c.Err)
		}
	}
	if cb.Stats().Dropped == 0 {
		t.Fatal("plan dropped nothing over TCP; test proved nothing")
	}
	// Harvest what arrived: strictly ordered, intact.
	last := uint64(0)
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		phs[1].Progress()
		c, ok := phs[1].PopRemote()
		if !ok {
			continue
		}
		if c.RID <= last {
			t.Fatalf("reordered or duplicated delivery: %d after %d", c.RID, last)
		}
		checkRIDPayload(t, c.RID, c.Data)
		last = c.RID
	}
	_ = delivered
}
