package shm_test

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"photon/internal/backend/shm"
	"photon/internal/core"
	"photon/internal/mem"
	"photon/internal/trace"
)

const waitT = 5 * time.Second

func newCluster(t *testing.T, n int) *shm.Cluster {
	t.Helper()
	cl, err := shm.NewCluster(n, shm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// waitComps polls b until want completions arrive, failing on error
// completions.
func waitComps(t *testing.T, b *shm.Backend, want int) []core.BackendCompletion {
	t.Helper()
	var out []core.BackendCompletion
	var buf [16]core.BackendCompletion
	deadline := time.Now().Add(waitT)
	for len(out) < want {
		n := b.Poll(buf[:])
		for i := 0; i < n; i++ {
			if !buf[i].OK {
				t.Fatalf("completion %d failed: %v", buf[i].Token, buf[i].Err)
			}
			out = append(out, buf[i])
		}
		if n == 0 && time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d completions", len(out), want)
		}
	}
	return out
}

func TestBackendIdentity(t *testing.T) {
	cl := newCluster(t, 3)
	for r, b := range cl.Backends() {
		if b.Rank() != r || b.Size() != 3 {
			t.Fatalf("backend %d: rank=%d size=%d", r, b.Rank(), b.Size())
		}
	}
}

func TestWriteReadAtomicMesh(t *testing.T) {
	cl := newCluster(t, 3)
	bufs := make([][]byte, 3)
	rbs := make([]struct {
		addr uint64
		rkey uint32
	}, 3)
	for r, b := range cl.Backends() {
		bufs[r] = make([]byte, 256)
		rb, lk, err := b.Register(bufs[r])
		if err != nil {
			t.Fatal(err)
		}
		if lk == nil {
			t.Fatal("nil read locker")
		}
		rbs[r].addr, rbs[r].rkey = rb.Addr, rb.RKey
	}

	// Every rank writes its signature to every other rank.
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			msg := []byte{byte(10*src + dst), 0xAB}
			off := uint64(src * 16)
			if err := cl.Backend(src).PostWrite(dst, msg, rbs[dst].addr+off, rbs[dst].rkey, uint64(100*src+dst), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	for src := 0; src < 3; src++ {
		waitComps(t, cl.Backend(src), 2)
	}
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			if bufs[dst][src*16] != byte(10*src+dst) || bufs[dst][src*16+1] != 0xAB {
				t.Fatalf("write %d->%d not applied: %x", src, dst, bufs[dst][src*16:src*16+2])
			}
		}
	}

	// Read back: rank 2 reads rank 0's region written by rank 1.
	got := make([]byte, 2)
	if err := cl.Backend(2).PostRead(0, got, rbs[0].addr+16, rbs[0].rkey, 777); err != nil {
		t.Fatal(err)
	}
	waitComps(t, cl.Backend(2), 1)
	if !bytes.Equal(got, []byte{10, 0xAB}) {
		t.Fatalf("read returned %x", got)
	}

	// Atomics: fetch-add then comp-swap on a word at rank 1.
	binary.LittleEndian.PutUint64(bufs[1][128:], 40)
	prior := make([]byte, 8)
	if err := cl.Backend(0).PostFetchAdd(1, prior, rbs[1].addr+128, rbs[1].rkey, 2, 801); err != nil {
		t.Fatal(err)
	}
	waitComps(t, cl.Backend(0), 1)
	if binary.LittleEndian.Uint64(prior) != 40 {
		t.Fatalf("fetch-add prior = %d", binary.LittleEndian.Uint64(prior))
	}
	if err := cl.Backend(0).PostCompSwap(1, prior, rbs[1].addr+128, rbs[1].rkey, 42, 7, 802); err != nil {
		t.Fatal(err)
	}
	waitComps(t, cl.Backend(0), 1)
	if binary.LittleEndian.Uint64(prior) != 42 {
		t.Fatalf("comp-swap prior = %d", binary.LittleEndian.Uint64(prior))
	}
	if binary.LittleEndian.Uint64(bufs[1][128:]) != 7 {
		t.Fatalf("comp-swap result = %d", binary.LittleEndian.Uint64(bufs[1][128:]))
	}
}

// TestSignaledFencesEarlier pins the RC ordering contract: a signaled
// completion implies every earlier (unsignaled) write toward the same
// rank has been applied.
func TestSignaledFencesEarlier(t *testing.T) {
	cl := newCluster(t, 2)
	target := make([]byte, 1024)
	rb, _, err := cl.Backend(1).Register(target)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			p := []byte{byte(round), byte(i)}
			if err := cl.Backend(0).PostWrite(1, p, rb.Addr+uint64(i*2), rb.RKey, 0, false); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.Backend(0).PostWrite(1, []byte{0xFF}, rb.Addr+512, rb.RKey, uint64(round), true); err != nil {
			t.Fatal(err)
		}
		waitComps(t, cl.Backend(0), 1)
		for i := 0; i < 7; i++ {
			if target[i*2] != byte(round) || target[i*2+1] != byte(i) {
				t.Fatalf("round %d: unsignaled write %d not fenced", round, i)
			}
		}
	}
}

// TestConcurrentBidirectionalRace hammers writes in both directions
// from multiple goroutines per rank (run under -race in CI): the
// per-target producer lock must serialize same-ring posters while the
// two agents drain concurrently.
func TestConcurrentBidirectionalRace(t *testing.T) {
	cl := newCluster(t, 2)
	const perWorker = 200
	bufs := [2][]byte{make([]byte, 4096), make([]byte, 4096)}
	var addrs [2]uint64
	var rkeys [2]uint32
	for r := 0; r < 2; r++ {
		rb, _, err := cl.Backend(r).Register(bufs[r])
		if err != nil {
			t.Fatal(err)
		}
		addrs[r], rkeys[r] = rb.Addr, rb.RKey
	}
	var wg sync.WaitGroup
	post := func(src, dst, worker int) {
		defer wg.Done()
		payload := []byte{byte(src), byte(worker), 0, 0, 0, 0, 0, 0}
		for i := 0; i < perWorker; i++ {
			tok := uint64(src)<<32 | uint64(worker)<<16 | uint64(i)
			off := uint64((worker*perWorker + i) % 512 * 8)
			for {
				err := cl.Backend(src).PostWrite(dst, payload, addrs[dst]+off, rkeys[dst], tok, true)
				if err == nil {
					break
				}
				if err != core.ErrWouldBlock {
					t.Error(err)
					return
				}
				// Full ring: drain our own completions and retry.
				var tmp [8]core.BackendCompletion
				cl.Backend(src).Poll(tmp[:])
			}
		}
	}
	for src := 0; src < 2; src++ {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go post(src, 1-src, w)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Concurrently reap both ranks until all posts complete.
	total := [2]int{}
	var buf [16]core.BackendCompletion
	deadline := time.Now().Add(waitT)
	for total[0]+total[1] < 2*2*perWorker {
		select {
		case <-done:
		default:
		}
		for r := 0; r < 2; r++ {
			n := cl.Backend(r).Poll(buf[:])
			for i := 0; i < n; i++ {
				if !buf[i].OK {
					t.Fatalf("completion failed: %v", buf[i].Err)
				}
			}
			total[r] += n
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d+%d completions", total[0], total[1])
		}
	}
	wg.Wait()
}

func TestExchangeRepeatedGenerations(t *testing.T) {
	cl := newCluster(t, 3)
	for gen := 0; gen < 5; gen++ {
		var wg sync.WaitGroup
		outs := make([][][]byte, 3)
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				outs[r], _ = cl.Backend(r).Exchange([]byte{byte(gen), byte(r)})
			}(r)
		}
		wg.Wait()
		for r := 0; r < 3; r++ {
			for s := 0; s < 3; s++ {
				if !bytes.Equal(outs[r][s], []byte{byte(gen), byte(s)}) {
					t.Fatalf("gen %d rank %d slot %d = %x", gen, r, s, outs[r][s])
				}
			}
		}
	}
}

// newShmJob boots an n-rank Photon job over the shm transport.
func newShmJob(t *testing.T, n int, cfg core.Config) []*core.Photon {
	t.Helper()
	cl := newCluster(t, n)
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(cl.Backend(r), cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, p := range phs {
			p.Close()
		}
	})
	return phs
}

// shareTarget registers buf at rank 1 and returns rank 0's view of
// the descriptor directory (ExchangeBuffers is collective).
func shareTarget(t *testing.T, phs []*core.Photon, buf []byte) []mem.RemoteBuffer {
	t.Helper()
	rb, _, err := phs[1].RegisterBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	var d0 []mem.RemoteBuffer
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[1] = phs[1].ExchangeBuffers(rb) }()
	go func() { defer wg.Done(); d0, errs[0] = phs[0].ExchangeBuffers(mem.RemoteBuffer{}) }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return d0
}

// TestPhotonOverShm runs the full middleware stack — ledgers, credit
// flow, token table, sharded engine — over the shm transport.
func TestPhotonOverShm(t *testing.T) {
	phs := newShmJob(t, 2, core.Config{EngineShards: 2})
	buf := make([]byte, 4096)
	d0 := shareTarget(t, phs, buf)
	payload := []byte("sharded-shm-put")
	if err := phs[0].PutBlocking(1, payload, d0[1], 0, 11, 22); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(11, waitT); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(22, waitT); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:len(payload)], payload) {
		t.Fatalf("payload = %q", buf[:len(payload)])
	}

	// One-sided get of the same region.
	got := make([]byte, len(payload))
	for {
		err := phs[0].GetWithCompletion(1, got, d0[1], 0, 33, 0)
		if err == nil {
			break
		}
		if err != core.ErrWouldBlock {
			t.Fatal(err)
		}
		phs[0].Progress()
	}
	if _, err := phs[0].WaitLocal(33, waitT); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("get returned %q", got)
	}

	// NIC-style atomic.
	binary.LittleEndian.PutUint64(buf[1024:], 5)
	for {
		err := phs[0].FetchAdd(1, d0[1], 1024, 3, 44)
		if err == nil {
			break
		}
		if err != core.ErrWouldBlock {
			t.Fatal(err)
		}
		phs[0].Progress()
	}
	lc, err := phs[0].WaitLocal(44, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Value != 5 {
		t.Fatalf("fetch-add prior = %d", lc.Value)
	}
	if binary.LittleEndian.Uint64(buf[1024:]) != 8 {
		t.Fatalf("fetch-add result = %d", binary.LittleEndian.Uint64(buf[1024:]))
	}
}

// TestShmPutAllocGuard extends the zero-allocation guard to the shm
// hot path: post, ring enqueue, agent dequeue/apply, completion
// push/drain — the full put round trip must stay allocation-free in
// steady state. Waits spin on Progress rather than parking (the
// parked path's timer is not part of the data path).
func TestShmPutAllocGuard(t *testing.T) {
	phs := newShmJob(t, 2, core.Config{EngineShards: 2})
	buf := make([]byte, 4096)
	d0 := shareTarget(t, phs, buf)
	payload := make([]byte, 8)
	put := func() {
		for {
			err := phs[0].PutWithCompletion(1, payload, d0[1], 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			phs[0].Progress()
		}
		gotL, gotR := false, false
		for !gotL || !gotR {
			if !gotL {
				if c, ok := phs[0].Probe(core.ProbeLocal); ok {
					if c.Err != nil {
						t.Fatal(c.Err)
					}
					gotL = true
				}
			}
			if !gotR {
				if c, ok := phs[1].Probe(core.ProbeRemote); ok {
					if c.Err != nil {
						t.Fatal(c.Err)
					}
					gotR = true
				}
			}
		}
	}
	for i := 0; i < 100; i++ {
		put()
	}
	allocs := testing.AllocsPerRun(200, put)
	t.Logf("shm put round trip: %.2f allocs/op", allocs)
	if allocs > 1 {
		t.Fatalf("shm put allocates %.2f times per op, want <= 1", allocs)
	}
}

// TestTracedShmPutAllocGuard is the fully-observed variant of the put
// guard: an enabled trace ring with every op sampled, so each round
// trip records post, wire-context link, complete, and reap events and
// carries the trace context through the shm ring frame — and must
// still never touch the heap.
func TestTracedShmPutAllocGuard(t *testing.T) {
	ring := trace.NewRing(4096)
	ring.Enable(true)
	phs := newShmJob(t, 2, core.Config{EngineShards: 2, Trace: ring})
	buf := make([]byte, 4096)
	d0 := shareTarget(t, phs, buf)
	payload := make([]byte, 8)
	put := func() {
		for {
			err := phs[0].PutWithCompletion(1, payload, d0[1], 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			phs[0].Progress()
		}
		gotL, gotR := false, false
		for !gotL || !gotR {
			if !gotL {
				if c, ok := phs[0].Probe(core.ProbeLocal); ok {
					if c.Err != nil {
						t.Fatal(c.Err)
					}
					gotL = true
				}
			}
			if !gotR {
				if c, ok := phs[1].Probe(core.ProbeRemote); ok {
					if c.Err != nil {
						t.Fatal(c.Err)
					}
					gotR = true
				}
			}
		}
	}
	for i := 0; i < 100; i++ {
		put()
	}
	allocs := testing.AllocsPerRun(200, put)
	t.Logf("traced shm put round trip: %.2f allocs/op", allocs)
	if allocs > 0 {
		t.Fatalf("traced shm put allocates %.2f times per op, want 0", allocs)
	}
	if ring.CountByKind()[trace.KindPost] == 0 {
		t.Fatal("trace ring recorded no post events — tracing was not active")
	}
}
