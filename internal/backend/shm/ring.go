package shm

import (
	"sync/atomic"
)

// spscRing is a fixed-size single-producer single-consumer byte ring:
// the unidirectional request channel between one (initiator, target)
// rank pair. The producer posts framed requests; the target's agent
// consumes them in FIFO order, which is what gives the backend its RC
// in-order-per-rank guarantee.
//
// head and tail are monotonically increasing byte positions (never
// wrapped); `& mask` maps them into the buffer, so emptiness is
// head == tail and fullness is tail-head == len(buf) with no reserved
// slot. Each index sits on its own cache line: the producer writes
// tail and reads head, the consumer writes head and reads tail, and
// without the padding every publish would bounce the other side's
// line (false sharing is the classic SPSC-ring perf cliff).
type spscRing struct {
	buf  []byte
	mask uint64

	_    [56]byte // pad: keep head off the buf/mask line
	head atomic.Uint64
	_    [56]byte // pad: head and tail on separate cache lines
	tail atomic.Uint64
	_    [56]byte // pad: keep tail clear of whatever follows

	// fullSpins counts producer attempts rejected for lack of space
	// (surfaced as ErrWouldBlock → engine defer/retry). Exported via
	// TransportStats as shm_ring_full_spins.
	fullSpins atomic.Int64
}

// newRing creates a ring of the given power-of-two capacity in bytes.
func newRing(size int) *spscRing {
	if size <= 0 || size&(size-1) != 0 {
		panic("shm: ring size must be a power of two")
	}
	return &spscRing{buf: make([]byte, size), mask: uint64(size - 1)}
}

// tryReserve checks for n bytes of space, returning the write position
// (the current tail) if available. Producer side only; the caller must
// follow with writeAt + publish. A false return bumps fullSpins.
//
//photon:hotpath
func (r *spscRing) tryReserve(n int) (uint64, bool) {
	t := r.tail.Load()
	if t-r.head.Load()+uint64(n) > uint64(len(r.buf)) {
		r.fullSpins.Add(1)
		return 0, false
	}
	return t, true
}

// writeAt copies p into the ring at byte position pos, splitting across
// the wrap point when needed. The caller must have reserved the space.
//
//photon:hotpath
func (r *spscRing) writeAt(pos uint64, p []byte) {
	i := pos & r.mask
	n := copy(r.buf[i:], p)
	if n < len(p) {
		copy(r.buf, p[n:])
	}
}

// publish makes everything up to newTail visible to the consumer. The
// atomic store is the release barrier ordering the writeAt copies
// before the consumer's tail load.
//
//photon:hotpath
func (r *spscRing) publish(newTail uint64) {
	r.tail.Store(newTail)
}

// pending reports how many bytes are readable. Consumer side only.
//
//photon:hotpath
func (r *spscRing) pending() uint64 {
	return r.tail.Load() - r.head.Load()
}

// readAt copies n bytes at position pos into dst (splitting across the
// wrap point), returning the filled slice. Consumer side only.
//
//photon:hotpath
func (r *spscRing) readAt(pos uint64, dst []byte, n int) []byte {
	dst = dst[:n]
	i := pos & r.mask
	k := copy(dst, r.buf[i:])
	if k < n {
		copy(dst[k:], r.buf)
	}
	return dst
}

// viewAt returns a zero-copy window over [pos, pos+n) when it is
// contiguous in the buffer, and ok=false when the range wraps (the
// caller falls back to readAt into scratch). The view is only valid
// until advance passes pos.
//
//photon:hotpath
func (r *spscRing) viewAt(pos uint64, n int) ([]byte, bool) {
	i := pos & r.mask
	if i+uint64(n) <= uint64(len(r.buf)) {
		return r.buf[i : i+uint64(n)], true
	}
	return nil, false
}

// advance releases n consumed bytes back to the producer. The atomic
// store is the release barrier: the producer may overwrite the space
// as soon as it observes the new head.
//
//photon:hotpath
func (r *spscRing) advance(n uint64) {
	r.head.Store(r.head.Load() + n)
}
