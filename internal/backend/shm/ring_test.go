package shm

import (
	"bytes"
	"testing"

	"photon/internal/core"
)

// TestRingWraparound drives frames of co-prime-ish sizes through a
// tiny ring so every copy path (contiguous, split header, split
// payload) is exercised across many wrap points.
func TestRingWraparound(t *testing.T) {
	r := newRing(64)
	scratch := make([]byte, 64)
	next := byte(0)
	emit := func(n int) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = next
			next++
		}
		return p
	}
	var queued [][]byte
	for round := 0; round < 200; round++ {
		// Produce while space allows.
		for _, n := range []int{5, 13, 7} {
			p := emit(n)
			pos, ok := r.tryReserve(n)
			if !ok {
				break
			}
			r.writeAt(pos, p)
			r.publish(pos + uint64(n))
			queued = append(queued, p)
		}
		// Consume one frame per round (forces sustained occupancy and
		// therefore wrap-splitting on both sides).
		if len(queued) > 0 {
			want := queued[0]
			queued = queued[1:]
			if got := r.readAt(r.head.Load(), scratch, len(want)); !bytes.Equal(got, want) {
				t.Fatalf("round %d: read %x want %x", round, got, want)
			}
			r.advance(uint64(len(want)))
		}
	}
	// Drain the tail.
	for _, want := range queued {
		if got := r.readAt(r.head.Load(), scratch, len(want)); !bytes.Equal(got, want) {
			t.Fatalf("drain: read %x want %x", got, want)
		}
		r.advance(uint64(len(want)))
	}
	if r.pending() != 0 {
		t.Fatalf("ring not empty: %d pending", r.pending())
	}
}

// TestRingViewAt checks the zero-copy window declines wrapped ranges.
func TestRingViewAt(t *testing.T) {
	r := newRing(16)
	if v, ok := r.viewAt(4, 8); !ok || len(v) != 8 {
		t.Fatalf("contiguous view rejected: ok=%v len=%d", ok, len(v))
	}
	if _, ok := r.viewAt(12, 8); ok {
		t.Fatal("wrapped view accepted")
	}
	if v, ok := r.viewAt(16+4, 8); !ok || len(v) != 8 {
		t.Fatal("masked position rejected")
	}
}

// TestRingFullBackpressure stalls rank 1's agent on the DMA lock,
// fills the 0→1 ring until PostWrite reports ErrWouldBlock, then
// releases the agent and verifies every accepted frame (plus the
// retried one) completes. This is the engine's defer/retry contract
// end to end: a full ring is transient backpressure, not an error.
func TestRingFullBackpressure(t *testing.T) {
	cl, err := NewCluster(2, Config{RingBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b0, b1 := cl.Backend(0), cl.Backend(1)
	target := make([]byte, 64)
	rb, _, err := b1.Register(target)
	if err != nil {
		t.Fatal(err)
	}

	// Stall the consumer: its agent blocks applying the first write.
	b1.memMu.Lock()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	accepted := 0
	var blocked bool
	for i := 0; i < 64; i++ {
		err := b0.PostWrite(1, payload, rb.Addr, rb.RKey, uint64(100+i), true)
		if err == core.ErrWouldBlock {
			blocked = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		accepted++
	}
	if !blocked {
		t.Fatal("ring never filled")
	}
	if accepted == 0 {
		t.Fatal("no frame accepted before backpressure")
	}
	if b1.inRings[0].fullSpins.Load() == 0 {
		t.Fatal("fullSpins not counted")
	}
	b1.memMu.Unlock()

	// The rejected post retries once space opens.
	deadline := 0
	for {
		if err := b0.PostWrite(1, payload, rb.Addr, rb.RKey, 999, true); err == nil {
			accepted++
			break
		} else if err != core.ErrWouldBlock {
			t.Fatal(err)
		}
		if deadline++; deadline > 1e7 {
			t.Fatal("retry never admitted")
		}
	}
	got := 0
	var comps [16]core.BackendCompletion
	for got < accepted {
		n := b0.Poll(comps[:])
		for i := 0; i < n; i++ {
			if !comps[i].OK {
				t.Fatalf("completion %d failed: %v", comps[i].Token, comps[i].Err)
			}
		}
		got += n
	}
}

// TestOversizePayloadRejected pins the ErrTooLarge boundary at half
// the ring.
func TestOversizePayloadRejected(t *testing.T) {
	cl, err := NewCluster(2, Config{RingBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	target := make([]byte, 256)
	rb, _, err := cl.Backend(1).Register(target)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 200)
	if err := cl.Backend(0).PostWrite(1, big, rb.Addr, rb.RKey, 1, true); err != core.ErrTooLarge {
		t.Fatalf("oversize post: %v, want ErrTooLarge", err)
	}
}
