// Package shm is Photon's intra-host shared-memory backend: the
// core.Backend transport contract over per-peer-pair SPSC ring buffers
// instead of a NIC or a socket. It models the shared-memory transports
// high-performance runtimes select for same-node peers (process-shared
// rings under CMA/XPMEM-style copy agents): when every rank lives in
// one OS process, a put is two ring copies and a futex-style wake —
// no syscalls, no serialization beyond the wire frame, and latency set
// by cache-coherency traffic rather than the network stack.
//
// Topology: each rank owns one inbound spscRing per peer (the directed
// pair's request channel) and a single agent goroutine that drains all
// of them. A posted operation is framed and copied into the target's
// inbound ring at post time (PostWrite's snapshot-at-post contract for
// free), the target's agent is kicked through a WakeChan, and the
// agent applies the operation against the target's registration table
// and pushes the completion directly into the *initiator's* CompQueue.
// Responses never traverse a reverse ring: the agent writes read and
// atomic results straight into the initiator's parked destination
// buffer — legal because the ranks share an address space, and exactly
// the shortcut a CMA copy agent takes on real hardware.
//
// Ordering: one ring per directed pair, drained FIFO, gives RC
// in-order-per-rank execution; completions are pushed in processing
// order, so a signaled completion fences everything posted earlier
// toward the same rank. A full ring surfaces as core.ErrWouldBlock
// (counted in shm_ring_full_spins) and the engine defers and retries,
// the same backpressure path as a full send queue.
package shm

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"photon/internal/core"
	"photon/internal/mem"
	"photon/internal/trace"
)

// Config tunes the cluster.
type Config struct {
	// RingBytes is the capacity of each directed per-pair ring
	// (default 1MiB, rounded up to a power of two). One operation may
	// use at most half the ring; larger payloads get ErrTooLarge.
	RingBytes int
}

func (c *Config) setDefaults() {
	if c.RingBytes <= 0 {
		c.RingBytes = 1 << 20
	}
	// Round up to a power of two (ring indexing masks).
	sz := 1
	for sz < c.RingBytes {
		sz <<= 1
	}
	c.RingBytes = sz
}

// Wire frame: u32 bodyLen | u8 op | u64 token | op-specific fields.
// The length prefix counts everything after itself. Producers publish
// whole frames only, so a consumer never observes a partial frame.
const (
	opWrite = 1 // u8 flags | u64 raddr | u32 rkey | payload
	opRead  = 2 // u64 raddr | u32 rkey | u32 n
	opFAdd  = 3 // u64 raddr | u32 rkey | u64 add
	opCSwap = 4 // u64 raddr | u32 rkey | u64 cmp | u64 swap

	flagSignaled = 1 << 0

	lenPrefix    = 4
	writeHdrLen  = lenPrefix + 1 + 8 + 1 + 8 + 4 // through rkey; payload follows
	readBodyLen  = 1 + 8 + 8 + 4 + 4
	fAddBodyLen  = 1 + 8 + 8 + 4 + 8
	cSwapBodyLen = 1 + 8 + 8 + 4 + 8 + 8
	maxFixedLen  = lenPrefix + cSwapBodyLen // agent header scratch bound

	// atomicResultLen is the 8-byte word every fetch-add/comp-swap
	// result buffer must hold; the agent writes exactly this many
	// bytes back into the initiator's pending buffer.
	atomicResultLen = 8
)

// registration is one pinned buffer in the fake address space (same
// scheme as the TCP backend: page-aligned bases handed out linearly,
// rkey-keyed).
type registration struct {
	buf  []byte
	base uint64
	rkey uint32
}

// Cluster owns one shm backend per rank plus the bootstrap exchange
// state. All ranks live in the calling process.
type Cluster struct {
	backends []*Backend

	//photon:lock shmcluster 10
	mu      sync.Mutex
	cond    *sync.Cond
	gen     int
	arrived int
	blobs   [][]byte
	outs    map[int][][]byte
	readers map[int]int
}

// NewCluster creates an n-rank shared-memory job.
func NewCluster(n int, cfg Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shm: cluster size %d", n)
	}
	cfg.setDefaults()
	c := &Cluster{
		backends: make([]*Backend, n),
		blobs:    make([][]byte, n),
		outs:     make(map[int][][]byte),
		readers:  make(map[int]int),
	}
	c.cond = sync.NewCond(&c.mu)
	for r := 0; r < n; r++ {
		b := &Backend{
			cluster:  c,
			rank:     r,
			size:     n,
			inRings:  make([]*spscRing, n),
			prodMu:   make([]sync.Mutex, n),
			regs:     make(map[uint32]*registration),
			nextRKey: 1,
			nextBase: 0x1000,
			pend:     make(map[uint64][]byte),
			compq:    core.NewCompQueue(),
			wake:     core.NewWakeChan(),
			closed:   make(chan struct{}),
		}
		for s := 0; s < n; s++ {
			if s != r {
				b.inRings[s] = newRing(cfg.RingBytes)
			}
		}
		c.backends[r] = b
	}
	for _, b := range c.backends {
		b.agentWG.Add(1)
		go b.agent()
	}
	return c, nil
}

// Backends returns the per-rank backends, indexed by rank.
func (c *Cluster) Backends() []*Backend { return c.backends }

// Backend returns the backend for one rank.
func (c *Cluster) Backend(rank int) *Backend { return c.backends[rank] }

// Close shuts down every backend.
func (c *Cluster) Close() {
	for _, b := range c.backends {
		if b != nil {
			b.Close()
		}
	}
}

// exchange implements the collective allgather barrier (same protocol
// as the vsim cluster: arrive, last rank publishes, everyone reads).
func (c *Cluster) exchange(rank int, blob []byte) ([][]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gen := c.gen
	c.blobs[rank] = append([]byte(nil), blob...)
	c.arrived++
	n := len(c.backends)
	if c.arrived == n {
		out := make([][]byte, n)
		copy(out, c.blobs)
		c.outs[gen] = out
		c.readers[gen] = n
		c.blobs = make([][]byte, n)
		c.arrived = 0
		c.gen++
		c.cond.Broadcast()
	} else {
		for c.gen == gen {
			c.cond.Wait()
		}
	}
	out := c.outs[gen]
	c.readers[gen]--
	if c.readers[gen] == 0 {
		delete(c.outs, gen)
		delete(c.readers, gen)
	}
	return out, nil
}

// Backend is one rank's shared-memory transport endpoint.
type Backend struct {
	cluster *Cluster
	rank    int
	size    int

	// inRings[s] carries requests from rank s toward this rank (nil at
	// self). This rank's agent is the only consumer of all of them.
	inRings []*spscRing
	// prodMu[t] serializes this rank's posters toward rank t: the
	// directed ring is SPSC, so concurrent engine goroutines posting to
	// the same target take the producer role one at a time.
	//photon:lock shmprod 20
	prodMu []sync.Mutex

	//photon:lock shmmem 30
	memMu    sync.RWMutex  // guards registered memory (the "DMA lock")
	writeAct atomic.Uint64 // bumped after every applied remote write/atomic
	regs     map[uint32]*registration
	nextRKey uint32
	nextBase uint64

	// pend parks read/atomic result destinations by token until the
	// target's agent fills and completes them.
	//photon:lock shmpend 40
	pendMu sync.Mutex
	pend   map[uint64][]byte

	// compq carries completions back to this rank's engine and doubles
	// as its NotifyBackend/WakeSinkBackend event source.
	compq *core.CompQueue

	// wake parks the agent between bursts (futex analogue: producers
	// kick it after publishing into an inbound ring).
	wake    *core.WakeChan
	agentWG sync.WaitGroup
	closed  chan struct{}

	// Transport counters (TransportStats).
	framesIn   atomic.Int64
	framesOut  atomic.Int64
	bytesIn    atomic.Int64
	bytesOut   atomic.Int64
	agentParks atomic.Int64
	agentWakes atomic.Int64
}

var (
	_ core.Backend         = (*Backend)(nil)
	_ core.BatchBackend    = (*Backend)(nil)
	_ core.NotifyBackend   = (*Backend)(nil)
	_ core.WakeSinkBackend = (*Backend)(nil)
	_ core.ActivityBackend = (*Backend)(nil)
	_ core.StatsBackend    = (*Backend)(nil)
)

// Rank returns this endpoint's rank.
func (b *Backend) Rank() int { return b.rank }

// Size returns the job size.
func (b *Backend) Size() int { return b.size }

// Register pins buf into the local registration table.
func (b *Backend) Register(buf []byte) (mem.RemoteBuffer, sync.Locker, error) {
	if len(buf) == 0 {
		return mem.RemoteBuffer{}, nil, fmt.Errorf("shm: empty registration")
	}
	b.memMu.Lock()
	defer b.memMu.Unlock()
	rkey := b.nextRKey
	b.nextRKey++
	base := b.nextBase
	sz := (uint64(len(buf)) + 0xFFF) &^ uint64(0xFFF)
	b.nextBase += sz + 0x1000
	b.regs[rkey] = &registration{buf: buf, base: base, rkey: rkey}
	return mem.RemoteBuffer{Addr: base, RKey: rkey, Len: len(buf)}, b.memMu.RLocker(), nil
}

// Deregister removes a registration.
func (b *Backend) Deregister(rb mem.RemoteBuffer) error {
	b.memMu.Lock()
	defer b.memMu.Unlock()
	if _, ok := b.regs[rb.RKey]; !ok {
		return fmt.Errorf("shm: no registration with rkey %d", rb.RKey)
	}
	delete(b.regs, rb.RKey)
	return nil
}

// lookup resolves (rkey, addr, n); caller must hold memMu.
func (b *Backend) lookup(rkey uint32, addr uint64, n int) (*registration, error) {
	r, ok := b.regs[rkey]
	if !ok {
		return nil, fmt.Errorf("shm: unknown rkey %d", rkey)
	}
	if addr < r.base || addr+uint64(n) > r.base+uint64(len(r.buf)) || addr+uint64(n) < addr {
		return nil, fmt.Errorf("shm: address out of registration bounds")
	}
	return r, nil
}

// ApplyLocal performs a loopback DMA write into this rank's own
// registered memory with full validation.
func (b *Backend) ApplyLocal(raddr uint64, rkey uint32, data []byte) error {
	b.memMu.Lock()
	reg, err := b.lookup(rkey, raddr, len(data))
	if err == nil {
		copy(reg.buf[raddr-reg.base:], data)
	}
	b.memMu.Unlock()
	if err == nil {
		b.writeAct.Add(1)
	}
	return err
}

// WriteActivity implements core.ActivityBackend with one counter for
// all registrations (the agent applies every remote write).
func (b *Backend) WriteActivity(rb mem.RemoteBuffer) (func() uint64, bool) {
	return b.writeAct.Load, true
}

// Poll reaps completions.
func (b *Backend) Poll(dst []core.BackendCompletion) int {
	return b.compq.Drain(dst)
}

// Notify implements core.NotifyBackend: signaled when a completion is
// queued or remote data lands in registered memory.
func (b *Backend) Notify() <-chan struct{} { return b.compq.Wake().Chan() }

// SetWakeSink implements core.WakeSinkBackend.
func (b *Backend) SetWakeSink(fn func()) { b.compq.Wake().SetSink(fn) }

// TransportStats implements core.StatsBackend. shm_ring_full_spins
// sums producer-side backpressure on every ring this rank posts into.
func (b *Backend) TransportStats(yield func(name string, v int64)) {
	yield("shm_frames_in", b.framesIn.Load())
	yield("shm_frames_out", b.framesOut.Load())
	yield("shm_bytes_in", b.bytesIn.Load())
	yield("shm_bytes_out", b.bytesOut.Load())
	yield("shm_agent_parks", b.agentParks.Load())
	yield("shm_agent_wakes", b.agentWakes.Load())
	var spins int64
	for _, peer := range b.cluster.backends {
		if peer.rank != b.rank {
			spins += peer.inRings[b.rank].fullSpins.Load()
		}
	}
	yield("shm_ring_full_spins", spins)
}

// ClockOffset implements core.ClockBackend: every rank lives in one
// process, so all clocks are identical by construction.
func (b *Backend) ClockOffset(rank int) (offsetNS, rttNS int64, ok bool) {
	return 0, 0, rank >= 0 && rank < b.size
}

// Exchange performs the collective bootstrap allgather.
func (b *Backend) Exchange(local []byte) ([][]byte, error) {
	return b.cluster.exchange(b.rank, local)
}

// Close stops the agent and releases the endpoint. Idempotent.
func (b *Backend) Close() error {
	b.pendMu.Lock()
	select {
	case <-b.closed:
		b.pendMu.Unlock()
		return nil
	default:
		close(b.closed)
	}
	b.pendMu.Unlock()
	b.wake.Kick()
	b.agentWG.Wait()
	return nil
}

func (b *Backend) checkRank(rank int) error {
	if rank < 0 || rank >= b.size {
		return core.ErrBadRank
	}
	select {
	case <-b.closed:
		return core.ErrClosed
	default:
		return nil
	}
}

// outRing returns the directed ring from this rank toward rank t.
func (b *Backend) outRing(t int) *spscRing {
	return b.cluster.backends[t].inRings[b.rank]
}

// PostWrite frames local into rank's inbound ring. The payload is
// copied at post time (snapshot-at-post), so the caller may recycle
// local as soon as this returns nil.
func (b *Backend) PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error {
	if err := b.checkRank(rank); err != nil {
		return err
	}
	if rank == b.rank {
		if err := b.ApplyLocal(raddr, rkey, local); err != nil {
			return err
		}
		if signaled {
			b.compq.Push(core.BackendCompletion{Token: token, OK: true})
		}
		return nil
	}
	r := b.outRing(rank)
	total := writeHdrLen + len(local)
	if total > len(r.buf)/2 {
		return core.ErrTooLarge
	}
	var hdr [writeHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(total-lenPrefix))
	hdr[4] = opWrite
	binary.LittleEndian.PutUint64(hdr[5:], token)
	if signaled {
		hdr[13] = flagSignaled
	}
	binary.LittleEndian.PutUint64(hdr[14:], raddr)
	binary.LittleEndian.PutUint32(hdr[22:], rkey)

	b.prodMu[rank].Lock()
	pos, ok := r.tryReserve(total)
	if !ok {
		b.prodMu[rank].Unlock()
		return core.ErrWouldBlock
	}
	r.writeAt(pos, hdr[:])
	r.writeAt(pos+writeHdrLen, local)
	r.publish(pos + uint64(total))
	b.prodMu[rank].Unlock()

	b.framesOut.Add(1)
	b.bytesOut.Add(int64(total))
	b.cluster.backends[rank].wake.Kick()
	return nil
}

// PostWriteBatch implements core.BatchBackend: one producer-lock
// acquisition and one doorbell kick for the whole burst.
func (b *Backend) PostWriteBatch(rank int, reqs []core.WriteReq) (int, error) {
	if err := b.checkRank(rank); err != nil {
		return 0, err
	}
	if rank == b.rank {
		for i := range reqs {
			if err := b.PostWrite(rank, reqs[i].Local, reqs[i].RemoteAddr, reqs[i].RKey, reqs[i].Token, reqs[i].Signaled); err != nil {
				return i, err
			}
		}
		return len(reqs), nil
	}
	r := b.outRing(rank)
	var hdr [writeHdrLen]byte
	n := 0
	var frames, bytes int64
	b.prodMu[rank].Lock()
	for i := range reqs {
		total := writeHdrLen + len(reqs[i].Local)
		if total > len(r.buf)/2 {
			b.prodMu[rank].Unlock()
			if frames > 0 {
				b.flushBatchStats(rank, frames, bytes)
			}
			return n, core.ErrTooLarge
		}
		pos, ok := r.tryReserve(total)
		if !ok {
			b.prodMu[rank].Unlock()
			if frames > 0 {
				b.flushBatchStats(rank, frames, bytes)
			}
			return n, core.ErrWouldBlock
		}
		binary.LittleEndian.PutUint32(hdr[0:], uint32(total-lenPrefix))
		hdr[4] = opWrite
		binary.LittleEndian.PutUint64(hdr[5:], reqs[i].Token)
		hdr[13] = 0
		if reqs[i].Signaled {
			hdr[13] = flagSignaled
		}
		binary.LittleEndian.PutUint64(hdr[14:], reqs[i].RemoteAddr)
		binary.LittleEndian.PutUint32(hdr[22:], reqs[i].RKey)
		r.writeAt(pos, hdr[:])
		r.writeAt(pos+writeHdrLen, reqs[i].Local)
		r.publish(pos + uint64(total))
		frames++
		bytes += int64(total)
		n++
	}
	b.prodMu[rank].Unlock()
	b.flushBatchStats(rank, frames, bytes)
	return n, nil
}

func (b *Backend) flushBatchStats(rank int, frames, bytes int64) {
	b.framesOut.Add(frames)
	b.bytesOut.Add(bytes)
	b.cluster.backends[rank].wake.Kick()
}

// postFixed frames a payload-free request (read/atomic) after parking
// the result destination under the token.
func (b *Backend) postFixed(rank int, local []byte, body []byte, token uint64) error {
	b.pendMu.Lock()
	b.pend[token] = local
	b.pendMu.Unlock()

	r := b.outRing(rank)
	total := lenPrefix + len(body)
	b.prodMu[rank].Lock()
	pos, ok := r.tryReserve(total)
	if !ok {
		b.prodMu[rank].Unlock()
		b.pendMu.Lock()
		delete(b.pend, token)
		b.pendMu.Unlock()
		return core.ErrWouldBlock
	}
	var lenBuf [lenPrefix]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(body)))
	r.writeAt(pos, lenBuf[:])
	r.writeAt(pos+lenPrefix, body)
	r.publish(pos + uint64(total))
	b.prodMu[rank].Unlock()

	b.framesOut.Add(1)
	b.bytesOut.Add(int64(total))
	b.cluster.backends[rank].wake.Kick()
	return nil
}

// PostRead starts a one-sided read; local is owned by the backend
// until the completion is reported.
func (b *Backend) PostRead(rank int, local []byte, raddr uint64, rkey uint32, token uint64) error {
	if err := b.checkRank(rank); err != nil {
		return err
	}
	if rank == b.rank {
		b.memMu.RLock()
		reg, err := b.lookup(rkey, raddr, len(local))
		if err == nil {
			copy(local, reg.buf[raddr-reg.base:])
		}
		b.memMu.RUnlock()
		b.compq.Push(core.BackendCompletion{Token: token, OK: err == nil, Err: err})
		return nil
	}
	var body [readBodyLen]byte
	body[0] = opRead
	binary.LittleEndian.PutUint64(body[1:], token)
	binary.LittleEndian.PutUint64(body[9:], raddr)
	binary.LittleEndian.PutUint32(body[17:], rkey)
	binary.LittleEndian.PutUint32(body[21:], uint32(len(local)))
	return b.postFixed(rank, local, body[:], token)
}

// PostFetchAdd atomically adds to the 8-byte word at (raddr, rkey).
func (b *Backend) PostFetchAdd(rank int, result []byte, raddr uint64, rkey uint32, add uint64, token uint64) error {
	if err := b.checkRank(rank); err != nil {
		return err
	}
	if len(result) < atomicResultLen {
		return fmt.Errorf("shm: fetch-add result buffer too small")
	}
	if rank == b.rank {
		err := b.atomicLocal(raddr, rkey, result, func(old uint64) uint64 { return old + add })
		b.compq.Push(core.BackendCompletion{Token: token, OK: err == nil, Err: err})
		return nil
	}
	var body [fAddBodyLen]byte
	body[0] = opFAdd
	binary.LittleEndian.PutUint64(body[1:], token)
	binary.LittleEndian.PutUint64(body[9:], raddr)
	binary.LittleEndian.PutUint32(body[17:], rkey)
	binary.LittleEndian.PutUint64(body[21:], add)
	return b.postFixed(rank, result, body[:], token)
}

// PostCompSwap atomically compare-and-swaps the 8-byte word.
func (b *Backend) PostCompSwap(rank int, result []byte, raddr uint64, rkey uint32, compare, swap uint64, token uint64) error {
	if err := b.checkRank(rank); err != nil {
		return err
	}
	if len(result) < atomicResultLen {
		return fmt.Errorf("shm: comp-swap result buffer too small")
	}
	if rank == b.rank {
		err := b.atomicLocal(raddr, rkey, result, func(old uint64) uint64 {
			if old == compare {
				return swap
			}
			return old
		})
		b.compq.Push(core.BackendCompletion{Token: token, OK: err == nil, Err: err})
		return nil
	}
	var body [cSwapBodyLen]byte
	body[0] = opCSwap
	binary.LittleEndian.PutUint64(body[1:], token)
	binary.LittleEndian.PutUint64(body[9:], raddr)
	binary.LittleEndian.PutUint32(body[17:], rkey)
	binary.LittleEndian.PutUint64(body[21:], compare)
	binary.LittleEndian.PutUint64(body[29:], swap)
	return b.postFixed(rank, result, body[:], token)
}

// atomicLocal applies fn to the 8-byte word under the DMA lock,
// placing the prior value in result.
func (b *Backend) atomicLocal(raddr uint64, rkey uint32, result []byte, fn func(uint64) uint64) error {
	b.memMu.Lock()
	reg, err := b.lookup(rkey, raddr, 8)
	if err != nil {
		b.memMu.Unlock()
		return err
	}
	w := reg.buf[raddr-reg.base:]
	old := binary.LittleEndian.Uint64(w)
	binary.LittleEndian.PutUint64(w, fn(old))
	b.memMu.Unlock()
	binary.LittleEndian.PutUint64(result, old)
	b.writeAct.Add(1)
	return nil
}

// takePend claims the parked destination for token.
func (b *Backend) takePend(token uint64) []byte {
	b.pendMu.Lock()
	buf := b.pend[token]
	delete(b.pend, token)
	b.pendMu.Unlock()
	return buf
}

// agent is this rank's consumer loop: it drains every inbound ring,
// applies operations against local registered memory, and completes
// them into the initiator's queue. One goroutine per rank; parked on
// the wake latch between bursts.
func (b *Backend) agent() {
	defer b.agentWG.Done()
	var hdr [maxFixedLen]byte
	for {
		busy := false
		for src, r := range b.inRings {
			if r == nil {
				continue
			}
			if n := b.drainRing(src, r, hdr[:]); n > 0 {
				busy = true
				// Ring space opened up: wake the producer's engine so
				// deferred (ErrWouldBlock) posts retry promptly.
				b.cluster.backends[src].compq.Kick()
			}
		}
		if busy {
			continue
		}
		select {
		case <-b.closed:
			return
		default:
		}
		b.agentParks.Add(1)
		select {
		case <-b.wake.Chan():
			b.agentWakes.Add(1)
		case <-b.closed:
			return
		}
	}
}

// drainRing consumes every complete frame currently in r (requests
// from rank src), returning the frame count.
func (b *Backend) drainRing(src int, r *spscRing, hdr []byte) int {
	frames := 0
	for {
		if r.pending() < lenPrefix {
			return frames
		}
		pos := r.head.Load()
		lb := r.readAt(pos, hdr[:lenPrefix], lenPrefix)
		bodyLen := int(binary.LittleEndian.Uint32(lb))
		// Producers publish whole frames, so the body is present.
		b.applyFrame(src, r, pos+lenPrefix, bodyLen, hdr)
		r.advance(uint64(lenPrefix + bodyLen))
		frames++
		b.framesIn.Add(1)
		b.bytesIn.Add(int64(lenPrefix + bodyLen))
	}
}

// applyFrame decodes and executes one request body at ring position
// pos, pushing the completion into the initiator's queue.
func (b *Backend) applyFrame(src int, r *spscRing, pos uint64, bodyLen int, hdr []byte) {
	peer := b.cluster.backends[src]
	fixed := bodyLen
	if fixed > len(hdr) {
		fixed = len(hdr)
	}
	h := r.readAt(pos, hdr[:fixed], fixed)
	op := h[0]
	token := binary.LittleEndian.Uint64(h[1:])
	switch op {
	case opWrite:
		signaled := h[9]&flagSignaled != 0
		raddr := binary.LittleEndian.Uint64(h[10:])
		rkey := binary.LittleEndian.Uint32(h[18:])
		n := bodyLen - (writeHdrLen - lenPrefix)
		b.memMu.Lock()
		reg, err := b.lookup(rkey, raddr, n)
		if err == nil {
			// Copy the payload straight from the ring into the target
			// registration (two segments across the wrap point at most).
			r.readAt(pos+writeHdrLen-lenPrefix, reg.buf[raddr-reg.base:raddr-reg.base+uint64(n)], n)
		}
		b.memMu.Unlock()
		if err == nil {
			b.writeAct.Add(1)
			// Data is visible: kick the target engine's sweep even when
			// unsignaled (ledger writes are unsignaled by design).
			b.compq.Kick()
			if signaled {
				peer.compq.Push(core.BackendCompletion{Token: token, OK: true})
			}
		} else if signaled {
			peer.compq.Push(core.BackendCompletion{Token: token, OK: false, Err: err})
		}
		trace.RecordLink(trace.KindWire, b.rank, src, token, 0, "shm.apply")
	case opRead:
		raddr := binary.LittleEndian.Uint64(h[9:])
		rkey := binary.LittleEndian.Uint32(h[17:])
		n := int(binary.LittleEndian.Uint32(h[21:]))
		dst := peer.takePend(token)
		var err error
		if dst == nil || len(dst) < n {
			err = fmt.Errorf("shm: read destination missing for token %d", token)
		} else {
			b.memMu.RLock()
			var reg *registration
			reg, err = b.lookup(rkey, raddr, n)
			if err == nil {
				copy(dst[:n], reg.buf[raddr-reg.base:])
			}
			b.memMu.RUnlock()
		}
		peer.compq.Push(core.BackendCompletion{Token: token, OK: err == nil, Err: err})
	case opFAdd:
		raddr := binary.LittleEndian.Uint64(h[9:])
		rkey := binary.LittleEndian.Uint32(h[17:])
		add := binary.LittleEndian.Uint64(h[21:])
		dst := peer.takePend(token)
		var err error
		if dst == nil {
			err = fmt.Errorf("shm: atomic destination missing for token %d", token)
		} else {
			err = b.atomicLocal(raddr, rkey, dst, func(old uint64) uint64 { return old + add })
		}
		peer.compq.Push(core.BackendCompletion{Token: token, OK: err == nil, Err: err})
	case opCSwap:
		raddr := binary.LittleEndian.Uint64(h[9:])
		rkey := binary.LittleEndian.Uint32(h[17:])
		cmp := binary.LittleEndian.Uint64(h[21:])
		swap := binary.LittleEndian.Uint64(h[29:])
		dst := peer.takePend(token)
		var err error
		if dst == nil {
			err = fmt.Errorf("shm: atomic destination missing for token %d", token)
		} else {
			err = b.atomicLocal(raddr, rkey, dst, func(old uint64) uint64 {
				if old == cmp {
					return swap
				}
				return old
			})
		}
		peer.compq.Push(core.BackendCompletion{Token: token, OK: err == nil, Err: err})
	default:
		peer.compq.Push(core.BackendCompletion{Token: token, OK: false,
			Err: fmt.Errorf("shm: unknown opcode %d", op)})
	}
}
