package msg

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameDecode drives decodeFrame with arbitrary wire bytes. The
// frame parser sits directly behind the bounce-buffer receive path, so
// every input must either be rejected or produce a frame whose payload
// stays inside the input buffer and whose size survives the uint64→int
// narrowing without wrapping negative (the pre-extraction parser could
// produce a negative RTS size and panic in make).
func FuzzFrameDecode(f *testing.F) {
	// Valid eager frame.
	eager := make([]byte, 13+5)
	eager[0] = kEager
	binary.LittleEndian.PutUint64(eager[1:], 42)
	binary.LittleEndian.PutUint32(eager[9:], 5)
	copy(eager[13:], "hello")
	f.Add(eager)
	// Eager with a lying length word (larger than the frame).
	liar := bytes.Clone(eager)
	binary.LittleEndian.PutUint32(liar[9:], 1<<31)
	f.Add(liar)
	// Valid RTS.
	rts := make([]byte, 37)
	rts[0] = kRTS
	binary.LittleEndian.PutUint64(rts[1:], 7)
	binary.LittleEndian.PutUint64(rts[9:], 1<<20)
	binary.LittleEndian.PutUint64(rts[17:], 0xdead0000)
	binary.LittleEndian.PutUint32(rts[25:], 99)
	binary.LittleEndian.PutUint64(rts[29:], 3)
	f.Add(rts)
	// RTS whose size word would wrap negative as int.
	evil := bytes.Clone(rts)
	binary.LittleEndian.PutUint64(evil[9:], ^uint64(0))
	f.Add(evil)
	// Valid FIN, truncated frames, unknown kind.
	fin := make([]byte, 9)
	fin[0] = kFIN
	binary.LittleEndian.PutUint64(fin[1:], 11)
	f.Add(fin)
	f.Add([]byte{})
	f.Add([]byte{kEager, 1, 2})
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, buf []byte) {
		fr, ok := decodeFrame(buf)
		if !ok {
			return
		}
		switch fr.kind {
		case kEager:
			if len(buf) < 13 {
				t.Fatalf("accepted truncated eager frame of %d bytes", len(buf))
			}
			if len(fr.payload) > len(buf)-13 {
				t.Fatalf("payload of %d bytes exceeds frame body of %d", len(fr.payload), len(buf)-13)
			}
		case kRTS:
			if len(buf) < 37 {
				t.Fatalf("accepted truncated RTS frame of %d bytes", len(buf))
			}
			if fr.size < 0 {
				t.Fatalf("RTS size wrapped negative: %d", fr.size)
			}
		case kFIN:
			if len(buf) < 9 {
				t.Fatalf("accepted truncated FIN frame of %d bytes", len(buf))
			}
		default:
			t.Fatalf("accepted unknown frame kind %d", fr.kind)
		}
	})
}

// TestDecodeFrameRTSOverflow pins the uint64→int hardening: a size
// word above MaxInt must reject the frame rather than surface a
// negative size (which panicked in make([]byte, size) downstream).
func TestDecodeFrameRTSOverflow(t *testing.T) {
	rts := make([]byte, 37)
	rts[0] = kRTS
	binary.LittleEndian.PutUint64(rts[9:], ^uint64(0))
	if fr, ok := decodeFrame(rts); ok {
		t.Fatalf("hostile RTS size accepted: size=%d", fr.size)
	}
	binary.LittleEndian.PutUint64(rts[9:], 1<<20)
	fr, ok := decodeFrame(rts)
	if !ok || fr.size != 1<<20 {
		t.Fatalf("valid RTS rejected: ok=%v size=%d", ok, fr.size)
	}
}
