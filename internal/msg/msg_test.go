package msg

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"photon/internal/fabric"
	"photon/internal/nicsim"
)

const waitT = 5 * time.Second

func newTestJob(t *testing.T, n int, cfg Config) *Job {
	t.Helper()
	j, err := NewJob(n, fabric.Model{}, nicsim.Config{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j.Close)
	return j
}

func TestEagerSendRecv(t *testing.T) {
	j := newTestJob(t, 2, Config{})
	a, b := j.Endpoint(0), j.Endpoint(1)
	if a.Rank() != 0 || b.Size() != 2 {
		t.Fatal("rank/size wrong")
	}
	h, err := a.Send(1, 42, []byte("two-sided baseline"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.RecvBlocking(0, 42, nil, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 0 || m.Tag != 42 || string(m.Data) != "two-sided baseline" {
		t.Fatalf("message = %+v", m)
	}
	if err := h.Wait(waitT); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.EagerTx != 1 || st.RdzvTx != 0 {
		t.Fatalf("sender stats = %+v", st)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	j := newTestJob(t, 2, Config{})
	a, b := j.Endpoint(0), j.Endpoint(1)
	ch, err := b.Recv(0, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send(1, 7, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitT)
	for {
		select {
		case m := <-ch:
			if !bytes.Equal(m.Data, []byte{1, 2, 3}) {
				t.Fatalf("data = %v", m.Data)
			}
			return
		default:
		}
		b.Progress()
		if time.Now().After(deadline) {
			t.Fatal("message never matched")
		}
	}
}

func TestUnexpectedQueueMatch(t *testing.T) {
	j := newTestJob(t, 2, Config{})
	a, b := j.Endpoint(0), j.Endpoint(1)
	// Send first; message arrives unexpected.
	if _, err := a.Send(1, 9, []byte("early")); err != nil {
		t.Fatal(err)
	}
	// Let it land in the unexpected queue.
	time.Sleep(5 * time.Millisecond)
	b.Progress()
	m, err := b.RecvBlocking(0, 9, nil, waitT)
	if err != nil || string(m.Data) != "early" {
		t.Fatalf("unexpected match: %v %q", err, m.Data)
	}
}

func TestTagSelectivity(t *testing.T) {
	j := newTestJob(t, 2, Config{})
	a, b := j.Endpoint(0), j.Endpoint(1)
	a.Send(1, 1, []byte("one"))
	a.Send(1, 2, []byte("two"))
	// Receive tag 2 first even though tag 1 arrived first.
	m2, err := b.RecvBlocking(0, 2, nil, waitT)
	if err != nil || string(m2.Data) != "two" {
		t.Fatalf("tag 2: %v %q", err, m2.Data)
	}
	m1, err := b.RecvBlocking(0, 1, nil, waitT)
	if err != nil || string(m1.Data) != "one" {
		t.Fatalf("tag 1: %v %q", err, m1.Data)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	j := newTestJob(t, 3, Config{})
	j.Endpoint(2).Send(1, 77, []byte("from 2"))
	m, err := j.Endpoint(1).RecvBlocking(-1, AnyTag, nil, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 2 || m.Tag != 77 {
		t.Fatalf("message = %+v", m)
	}
}

func TestRendezvousLarge(t *testing.T) {
	j := newTestJob(t, 2, Config{EagerLimit: 512})
	a, b := j.Endpoint(0), j.Endpoint(1)
	big := make([]byte, 128*1024)
	for i := range big {
		big[i] = byte(i * 13)
	}
	h, err := a.Send(1, 5, big)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	var rerr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, rerr = b.RecvBlocking(0, 5, nil, waitT)
	}()
	if err := h.Wait(waitT); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(m.Data, big) {
		t.Fatal("rendezvous payload corrupted")
	}
	if st := a.Stats(); st.RdzvTx != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRendezvousIntoUserBuffer(t *testing.T) {
	j := newTestJob(t, 2, Config{EagerLimit: 64})
	a, b := j.Endpoint(0), j.Endpoint(1)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	dst := make([]byte, 8192)
	ch, err := b.Recv(0, 3, dst)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := a.Send(1, 3, payload)
	go h.Wait(waitT)
	deadline := time.Now().Add(waitT)
	for {
		select {
		case m := <-ch:
			if &m.Data[0] != &dst[0] {
				t.Fatal("rendezvous did not land in the user buffer")
			}
			if !bytes.Equal(m.Data, payload) {
				t.Fatal("payload mismatch")
			}
			return
		default:
		}
		b.Progress()
		a.Progress()
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
	}
}

func TestEagerIntoUserBufferCopies(t *testing.T) {
	j := newTestJob(t, 2, Config{})
	a, b := j.Endpoint(0), j.Endpoint(1)
	dst := make([]byte, 16)
	a.Send(1, 4, []byte("copy me"))
	m, err := b.RecvBlocking(0, 4, dst, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if &m.Data[0] != &dst[0] || string(m.Data) != "copy me" {
		t.Fatalf("eager copy into user buffer failed: %q", m.Data)
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	j := newTestJob(t, 2, Config{RecvSlots: 8})
	a, b := j.Endpoint(0), j.Endpoint(1)
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			h, err := a.Send(1, 1, []byte{byte(i), byte(i >> 8)})
			if err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			_ = h
			a.Progress()
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.RecvBlocking(0, 1, nil, waitT)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got := int(m.Data[0]) | int(m.Data[1])<<8
		if got != i {
			t.Fatalf("recv %d got %d (same-tag ordering violated)", i, got)
		}
	}
	wg.Wait()
}

func TestBadRank(t *testing.T) {
	j := newTestJob(t, 2, Config{})
	if _, err := j.Endpoint(0).Send(5, 1, nil); !errors.Is(err, ErrBadRank) {
		t.Fatalf("send bad rank: %v", err)
	}
	if _, err := j.Endpoint(0).Recv(9, 1, nil); !errors.Is(err, ErrBadRank) {
		t.Fatalf("recv bad rank: %v", err)
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	j := newTestJob(t, 2, Config{})
	b := j.Endpoint(1)
	ch, err := b.Recv(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		j.Close()
	}()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("expected closed channel, got message")
		}
	case <-time.After(waitT):
		t.Fatal("receiver not unblocked by close")
	}
	if _, err := b.Send(0, 1, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestSelfMessaging(t *testing.T) {
	j := newTestJob(t, 1, Config{})
	ep := j.Endpoint(0)
	if _, err := ep.Send(0, 8, []byte("self")); err != nil {
		t.Fatal(err)
	}
	m, err := ep.RecvBlocking(0, 8, nil, waitT)
	if err != nil || string(m.Data) != "self" {
		t.Fatalf("self message: %v %q", err, m.Data)
	}
}

func TestMatchScansCounted(t *testing.T) {
	j := newTestJob(t, 2, Config{})
	a, b := j.Endpoint(0), j.Endpoint(1)
	a.Send(1, 1, []byte{1})
	b.RecvBlocking(0, 1, nil, waitT)
	if st := b.Stats(); st.MatchScans == 0 {
		t.Fatal("matching engine scans not counted")
	}
}
