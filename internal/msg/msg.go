// Package msg is the two-sided baseline Photon is evaluated against: a
// miniature MPI-style message layer (tagged send/receive with eager and
// rendezvous protocols) built on the very same simulated NIC.
//
// Keeping the transport identical isolates exactly the software
// difference the paper's comparison is about: a two-sided layer must
// pre-post receive buffers, run a tag-matching engine on every arrival,
// and copy payloads out of bounce buffers, while Photon's one-sided
// ledger path delivers data and completion identifiers directly into
// their destination with no matching.
//
// Wire protocol (all over SEND/RECV on a per-peer QP):
//
//	eager:  [kind=1][tag8][len4][payload]          (len <= EagerLimit)
//	rts:    [kind=2][tag8][len8][addr8][rkey4]     (sender-registered source)
//	fin:    [kind=3][seq8]                          (read done; release source)
//
// Large messages rendezvous: the receiver matches the RTS against a
// posted receive, RDMA-reads the payload straight into the user buffer
// (zero-copy on the receive side), and FINs the sender.
package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	gort "runtime"
	"sync"
	"time"

	"photon/internal/errs"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/nicsim"
	"photon/internal/trace"
	"photon/internal/verbs"
)

// Errors returned by the message layer. ErrTimeout wraps the shared
// root sentinel (aliased as core.ErrTimeout), so errors.Is against
// either name matches timeouts from this layer.
var (
	ErrClosed  = errors.New("msg: endpoint closed")
	ErrBadRank = errors.New("msg: rank out of range")
	ErrTimeout = fmt.Errorf("msg: wait timed out: %w", errs.ErrTimeout)
)

// AnyTag matches any tag in Recv.
const AnyTag = ^uint64(0)

// Config tunes the endpoint.
type Config struct {
	// EagerLimit is the largest payload sent inline (default 1024).
	EagerLimit int
	// RecvSlots is the number of pre-posted receive bounce buffers
	// per peer (default 64).
	RecvSlots int
}

func (c *Config) setDefaults() {
	if c.EagerLimit <= 0 {
		c.EagerLimit = 1024
	}
	if c.RecvSlots <= 0 {
		c.RecvSlots = 64
	}
}

const (
	kEager = 1
	kRTS   = 2
	kFIN   = 3
	hdrMax = 1 + 8 + 8 + 8 + 4
)

// Frame fixed-part lengths shared by the encoders and decodeFrame.
const (
	eagerHdrLen = 1 + 8 + 4             // kind | tag8 | plen4; payload follows
	rtsFrameLen = 1 + 8 + 8 + 8 + 4 + 8 // kind | tag8 | size8 | addr8 | rkey4 | seq8
	finFrameLen = 1 + 8                 // kind | seq8
)

// Message is one matched, delivered message.
type Message struct {
	Src  int
	Tag  uint64
	Data []byte
}

// recvReq is a posted receive awaiting a match.
type recvReq struct {
	src  int // -1 = any source
	tag  uint64
	buf  []byte // user buffer; nil = allocate
	done chan Message
}

// unexpected is an arrived message with no matching receive yet.
type unexpected struct {
	src     int
	tag     uint64
	data    []byte // eager payload (copied)
	rts     bool
	size    int
	addr    uint64
	rkey    uint32
	seq     uint64
	pending bool // rendezvous read in flight
}

// pendingSend tracks an in-flight send for Wait.
type pendingSend struct {
	done chan error
}

// Endpoint is one rank's two-sided message endpoint.
type Endpoint struct {
	rank int
	size int
	cfg  Config
	dev  *verbs.Device
	scq  *verbs.CQ
	rcq  *verbs.CQ
	qps  []*verbs.QP

	//photon:lock ep 10
	mu        sync.Mutex
	posted    []*recvReq
	unexp     []*unexpected
	rdzvSrc   map[uint64]*rdzvSrc // seq -> sender-side registered source
	rdzvDst   map[uint64]*rdzvDst // read token -> receiver-side state
	sendWaits map[uint64]*pendingSend
	tokPeer   map[uint64]int // send token -> destination peer (credit return)
	nextSeq   uint64
	nextTok   uint64
	recvBufs  map[int][][]byte // per-peer bounce rings
	inflight  []int            // outstanding unacked frames per peer (eager flow control)
	closed    bool

	// framePool recycles outbound frame scratch (eager, RTS, FIN).
	// The QP's post path snapshots the frame before returning, so a
	// frame goes back to the pool the moment PostSend accepts it.
	framePool *mem.BufPool

	stats struct {
		eagerTx, eagerRx, rdzvTx, rdzvRx int64
		matchScans                       int64
	}
}

type rdzvSrc struct {
	mr   *verbs.MR
	wait *pendingSend
	tok  uint64 // send token: its flow-control credit settles on FIN
	peer int
}

type rdzvDst struct {
	src  int
	seq  uint64
	tag  uint64
	buf  []byte
	done chan Message
}

// Stats reports baseline activity for the benchmark harness.
type Stats struct {
	EagerTx, EagerRx, RdzvTx, RdzvRx, MatchScans int64
}

// Job is a set of endpoints over one fabric (one per rank), the
// two-sided analogue of a vsim.Cluster.
type Job struct {
	fab     *fabric.Fabric
	ownsFab bool
	eps     []*Endpoint
}

// NewJob builds n connected endpoints over a fresh fabric.
func NewJob(n int, fm fabric.Model, nc nicsim.Config, cfg Config) (*Job, error) {
	fab := fabric.New(n, fm)
	j, err := NewJobOver(fab, nc, cfg)
	if err != nil {
		fab.Close()
		return nil, err
	}
	j.ownsFab = true
	return j, nil
}

// NewJobOver builds one endpoint per node of an existing fabric.
func NewJobOver(fab *fabric.Fabric, nc nicsim.Config, cfg Config) (*Job, error) {
	cfg.setDefaults()
	n := fab.NumNodes()
	j := &Job{fab: fab, eps: make([]*Endpoint, n)}
	for r := 0; r < n; r++ {
		dev, err := verbs.Open(fab, r, nc)
		if err != nil {
			j.Close()
			return nil, err
		}
		ep := &Endpoint{
			rank:      r,
			size:      n,
			cfg:       cfg,
			dev:       dev,
			scq:       dev.CreateCQ(8192),
			rcq:       dev.CreateCQ(8192),
			qps:       make([]*verbs.QP, n),
			rdzvSrc:   make(map[uint64]*rdzvSrc),
			rdzvDst:   make(map[uint64]*rdzvDst),
			sendWaits: make(map[uint64]*pendingSend),
			tokPeer:   make(map[uint64]int),
			nextSeq:   1,
			nextTok:   1,
			recvBufs:  make(map[int][][]byte),
			inflight:  make([]int, n),
			framePool: mem.NewBufPool(hdrMax+cfg.EagerLimit, 256),
		}
		j.eps[r] = ep
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			qp, err := j.eps[i].dev.CreateQP(j.eps[i].scq, j.eps[i].rcq)
			if err != nil {
				j.Close()
				return nil, err
			}
			j.eps[i].qps[k] = qp
		}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if err := j.eps[i].qps[k].Connect(k, j.eps[k].qps[i].QPN()); err != nil {
				j.Close()
				return nil, err
			}
		}
	}
	// Pre-post bounce buffers: the defining two-sided cost.
	for _, ep := range j.eps {
		if err := ep.prepost(); err != nil {
			j.Close()
			return nil, err
		}
	}
	return j, nil
}

// Endpoints returns the endpoints indexed by rank.
func (j *Job) Endpoints() []*Endpoint { return j.eps }

// Endpoint returns one rank's endpoint.
func (j *Job) Endpoint(rank int) *Endpoint { return j.eps[rank] }

// Fabric returns the underlying fabric.
func (j *Job) Fabric() *fabric.Fabric { return j.fab }

// Close shuts down all endpoints (and the fabric if the job owns it).
func (j *Job) Close() {
	for _, ep := range j.eps {
		if ep != nil {
			ep.close()
		}
	}
	if j.ownsFab {
		j.fab.Close()
	}
}

func (ep *Endpoint) prepost() error {
	for peer := 0; peer < ep.size; peer++ {
		bufs := make([][]byte, ep.cfg.RecvSlots)
		for i := range bufs {
			bufs[i] = make([]byte, hdrMax+ep.cfg.EagerLimit)
			wrid := recvWRID(peer, i)
			if err := ep.qps[peer].PostRecv(verbs.RecvWR{WRID: wrid, Buf: bufs[i]}); err != nil {
				return err
			}
		}
		ep.recvBufs[peer] = bufs
	}
	return nil
}

// recvWRID packs (peer, slot) into a receive WRID.
func recvWRID(peer, slot int) uint64 { return uint64(peer)<<32 | uint64(slot) }

func recvWRIDParts(w uint64) (peer, slot int) { return int(w >> 32), int(w & 0xFFFFFFFF) }

// Rank returns this endpoint's rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Size returns the job size.
func (ep *Endpoint) Size() int { return ep.size }

// Stats returns activity counters.
func (ep *Endpoint) Stats() Stats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return Stats{
		EagerTx: ep.stats.eagerTx, EagerRx: ep.stats.eagerRx,
		RdzvTx: ep.stats.rdzvTx, RdzvRx: ep.stats.rdzvRx,
		MatchScans: ep.stats.matchScans,
	}
}

func (ep *Endpoint) close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	// Fail all blocked receivers and senders.
	for _, r := range ep.posted {
		close(r.done)
	}
	ep.posted = nil
	for _, w := range ep.sendWaits {
		select {
		case w.done <- ErrClosed:
		default:
		}
	}
	ep.mu.Unlock()
	ep.dev.Close()
}

// Send transmits data to rank under tag and returns a wait handle; the
// handle resolves when the payload is out of the caller's buffer (eager:
// transport ack; rendezvous: FIN).
func (ep *Endpoint) Send(rank int, tag uint64, data []byte) (*SendHandle, error) {
	if rank < 0 || rank >= ep.size {
		return nil, ErrBadRank
	}
	// Eager flow control: never run more unacked frames toward one
	// peer than it has pre-posted bounce buffers (real MPIs maintain
	// exactly this credit scheme to avoid receiver-not-ready storms).
	for {
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			return nil, ErrClosed
		}
		if ep.inflight[rank] < ep.cfg.RecvSlots {
			ep.inflight[rank]++
			break
		}
		ep.mu.Unlock()
		ep.Progress()
		gort.Gosched()
	}
	tok := ep.nextTok
	ep.nextTok++
	wait := &pendingSend{done: make(chan error, 1)}
	ep.sendWaits[tok] = wait
	ep.tokPeer[tok] = rank
	ep.mu.Unlock()

	if len(data) <= ep.cfg.EagerLimit {
		frame := ep.framePool.Get(eagerHdrLen + len(data))
		frame[0] = kEager
		binary.LittleEndian.PutUint64(frame[1:], tag)
		binary.LittleEndian.PutUint32(frame[9:], uint32(len(data)))
		copy(frame[eagerHdrLen:], data)
		if err := ep.postSendRetry(rank, frame, tok); err != nil {
			ep.dropWait(tok)
			return nil, err
		}
		ep.framePool.Put(frame)
		trace.Record(trace.KindPost, ep.rank, tag, "msg.eager.tx")
		ep.mu.Lock()
		ep.stats.eagerTx++
		ep.mu.Unlock()
		return &SendHandle{ep: ep, tok: tok, wait: wait}, nil
	}

	// Rendezvous: register the source and advertise it.
	mr, err := ep.dev.RegMR(data, verbs.AccessRemoteRead)
	if err != nil {
		ep.dropWait(tok)
		return nil, err
	}
	ep.mu.Lock()
	seq := ep.nextSeq
	ep.nextSeq++
	ep.rdzvSrc[seq] = &rdzvSrc{mr: mr, wait: wait, tok: tok, peer: rank}
	ep.stats.rdzvTx++
	ep.mu.Unlock()
	frame := ep.framePool.Get(rtsFrameLen)
	frame[0] = kRTS
	binary.LittleEndian.PutUint64(frame[1:], tag)
	binary.LittleEndian.PutUint64(frame[9:], uint64(len(data)))
	binary.LittleEndian.PutUint64(frame[17:], mr.Base())
	binary.LittleEndian.PutUint32(frame[25:], mr.RKey())
	binary.LittleEndian.PutUint64(frame[29:], seq)
	if err := ep.postSendRetry(rank, frame, 0); err != nil {
		ep.dropWait(tok)
		return nil, err
	}
	ep.framePool.Put(frame)
	trace.Record(trace.KindProtocol, ep.rank, seq, "msg.rts.tx")
	return &SendHandle{ep: ep, tok: tok, wait: wait}, nil
}

func (ep *Endpoint) dropWait(tok uint64) {
	ep.mu.Lock()
	delete(ep.sendWaits, tok)
	if peer, ok := ep.tokPeer[tok]; ok {
		delete(ep.tokPeer, tok)
		ep.inflight[peer]--
	}
	ep.mu.Unlock()
}

// postSendRetry posts a SEND, spinning briefly on a full send queue.
func (ep *Endpoint) postSendRetry(rank int, frame []byte, tok uint64) error {
	for {
		err := ep.qps[rank].PostSend(verbs.SendWR{
			WRID: tok, Op: verbs.OpSend, Local: frame, Signaled: tok != 0,
		})
		if err == nil || !errors.Is(err, nicsim.ErrSQFull) {
			return err
		}
		ep.Progress()
		time.Sleep(time.Microsecond)
	}
}

// SendHandle resolves when a send's buffer is reusable.
type SendHandle struct {
	ep   *Endpoint
	tok  uint64
	wait *pendingSend
}

// Wait blocks (driving progress) until the send completes. A
// non-positive timeout waits forever.
func (h *SendHandle) Wait(timeout time.Duration) error {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		select {
		case err := <-h.wait.done:
			return err
		default:
		}
		if h.ep.Progress() == 0 {
			gort.Gosched()
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrTimeout
		}
	}
}

// Recv posts a receive for (src, tag); src may be -1 (any source) and
// tag may be AnyTag. If buf is non-nil, rendezvous payloads land in it
// zero-copy; eager payloads are copied into it. The returned channel
// yields the matched message (channel closes on endpoint shutdown).
func (ep *Endpoint) Recv(src int, tag uint64, buf []byte) (<-chan Message, error) {
	if src < -1 || src >= ep.size {
		return nil, ErrBadRank
	}
	req := &recvReq{src: src, tag: tag, buf: buf, done: make(chan Message, 1)}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrClosed
	}
	// Try the unexpected queue first (arrival order).
	for i, u := range ep.unexp {
		ep.stats.matchScans++
		if u.pending || !match(req, u.src, u.tag) {
			continue
		}
		ep.unexp = append(ep.unexp[:i], ep.unexp[i+1:]...)
		if !u.rts {
			ep.mu.Unlock()
			req.done <- Message{Src: u.src, Tag: u.tag, Data: intoBuf(req.buf, u.data)}
			return req.done, nil
		}
		// Rendezvous: start the read now that a buffer exists.
		ep.startRdzvReadLocked(req, u)
		ep.mu.Unlock()
		return req.done, nil
	}
	ep.posted = append(ep.posted, req)
	ep.mu.Unlock()
	return req.done, nil
}

// RecvBlocking is Recv plus a progress-driving wait.
func (ep *Endpoint) RecvBlocking(src int, tag uint64, buf []byte, timeout time.Duration) (Message, error) {
	ch, err := ep.Recv(src, tag, buf)
	if err != nil {
		return Message{}, err
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		select {
		case m, ok := <-ch:
			if !ok {
				return Message{}, ErrClosed
			}
			return m, nil
		default:
		}
		if ep.Progress() == 0 {
			gort.Gosched()
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Message{}, ErrTimeout
		}
	}
}

func match(r *recvReq, src int, tag uint64) bool {
	if r.src != -1 && r.src != src {
		return false
	}
	if r.tag != AnyTag && r.tag != tag {
		return false
	}
	return true
}

func intoBuf(dst, src []byte) []byte {
	if dst == nil {
		return src
	}
	n := copy(dst, src)
	return dst[:n]
}

// startRdzvReadLocked begins the receiver-side RDMA read for a matched
// RTS. Caller holds ep.mu.
func (ep *Endpoint) startRdzvReadLocked(req *recvReq, u *unexpected) {
	dst := req.buf
	if dst == nil || len(dst) < u.size {
		dst = make([]byte, u.size)
	}
	tok := ep.nextTok
	ep.nextTok++
	ep.rdzvDst[tok] = &rdzvDst{src: u.src, seq: u.seq, tag: u.tag, buf: dst[:u.size], done: req.done}
	// Post outside the lock? PostSend is non-blocking and lock-free
	// with respect to ep.mu; safe to call while holding it.
	err := ep.qps[u.src].PostSend(verbs.SendWR{
		WRID: tok, Op: verbs.OpRDMARead, Local: dst[:u.size],
		RemoteAddr: u.addr, RKey: u.rkey, Signaled: true,
	})
	if err != nil {
		// Requeue as pending-unexpected and retry from Progress.
		u.pending = false
		ep.unexp = append(ep.unexp, u)
		ep.posted = append(ep.posted, req)
		delete(ep.rdzvDst, tok)
	}
}

// Progress drives the matching engine: it reaps receive completions
// (unpacking eager frames and RTS advertisements), send completions,
// and rendezvous reads. Returns events handled.
func (ep *Endpoint) Progress() int {
	n := 0
	var cqes [64]verbs.CQE
	// Receive side.
	for {
		k := ep.rcq.PollInto(cqes[:])
		for i := 0; i < k; i++ {
			ep.handleRecvCQE(cqes[i])
		}
		n += k
		if k < len(cqes) {
			break
		}
	}
	// Send side.
	for {
		k := ep.scq.PollInto(cqes[:])
		for i := 0; i < k; i++ {
			ep.handleSendCQE(cqes[i])
		}
		n += k
		if k < len(cqes) {
			break
		}
	}
	return n
}

func (ep *Endpoint) handleRecvCQE(e verbs.CQE) {
	peer, slot := recvWRIDParts(e.WRID)
	ep.mu.Lock()
	bufs, ok := ep.recvBufs[peer]
	if !ok || slot >= len(bufs) || e.Status != verbs.StatusOK {
		ep.mu.Unlock()
		return
	}
	frame := bufs[slot][:e.ByteLen]
	ep.dispatchFrameLocked(e.SrcNode, frame) //photon:allow lockorder -- every r.done is buffered (cap 1, one completion per request); the send cannot block
	ep.mu.Unlock()
	// Re-post the bounce buffer (consumed exactly once).
	_ = ep.qps[peer].PostRecv(verbs.RecvWR{WRID: e.WRID, Buf: bufs[slot]})
}

// maxFrameInt bounds untrusted 64-bit size words before narrowing to
// int: a wire value above it would wrap negative and panic downstream
// (make, re-slicing).
const maxFrameInt = uint64(int(^uint(0) >> 1))

// frame is one decoded wire frame. Payload aliases the input buffer —
// a retaining caller must copy it out before the bounce buffer is
// re-posted.
type frame struct {
	kind    uint8
	tag     uint64
	payload []byte // eager: payload bytes (clamped to the frame)
	size    int    // rts: advertised source length
	addr    uint64 // rts: registered source address
	rkey    uint32 // rts: source rkey
	seq     uint64 // rts/fin: rendezvous sequence number
}

// decodeFrame parses one wire frame, returning false for truncated,
// unknown, or malformed input. It is a pure function over the buffer
// (no endpoint state) so it can be fuzzed directly: any input must
// either be rejected or yield a frame whose payload is in bounds and
// whose size is non-negative.
func decodeFrame(buf []byte) (frame, bool) {
	if len(buf) < 1 {
		return frame{}, false
	}
	switch buf[0] {
	case kEager:
		if len(buf) < eagerHdrLen {
			return frame{}, false
		}
		plen := int(binary.LittleEndian.Uint32(buf[9:]))
		if plen > len(buf)-eagerHdrLen {
			// Tolerate short frames from truncating transports: deliver
			// what actually arrived (historical receiver behavior).
			plen = len(buf) - eagerHdrLen
		}
		return frame{
			kind:    kEager,
			tag:     binary.LittleEndian.Uint64(buf[1:]),
			payload: buf[eagerHdrLen : eagerHdrLen+plen],
		}, true
	case kRTS:
		if len(buf) < rtsFrameLen {
			return frame{}, false
		}
		size := binary.LittleEndian.Uint64(buf[9:])
		if size > maxFrameInt {
			// Would wrap negative as int; hostile or corrupt — drop.
			return frame{}, false
		}
		return frame{
			kind: kRTS,
			tag:  binary.LittleEndian.Uint64(buf[1:]),
			size: int(size),
			addr: binary.LittleEndian.Uint64(buf[17:]),
			rkey: binary.LittleEndian.Uint32(buf[25:]),
			seq:  binary.LittleEndian.Uint64(buf[29:]),
		}, true
	case kFIN:
		if len(buf) < finFrameLen {
			return frame{}, false
		}
		return frame{kind: kFIN, seq: binary.LittleEndian.Uint64(buf[1:])}, true
	}
	return frame{}, false
}

// dispatchFrameLocked parses one frame and runs the matching engine.
// Caller holds ep.mu.
func (ep *Endpoint) dispatchFrameLocked(src int, buf []byte) {
	f, ok := decodeFrame(buf)
	if !ok {
		return
	}
	switch f.kind {
	case kEager:
		data := append([]byte(nil), f.payload...)
		trace.Record(trace.KindLedger, ep.rank, f.tag, "msg.eager.rx")
		ep.stats.eagerRx++
		for i, r := range ep.posted {
			ep.stats.matchScans++
			if match(r, src, f.tag) {
				ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
				r.done <- Message{Src: src, Tag: f.tag, Data: intoBuf(r.buf, data)}
				return
			}
		}
		ep.unexp = append(ep.unexp, &unexpected{src: src, tag: f.tag, data: data})
	case kRTS:
		u := &unexpected{
			src:  src,
			tag:  f.tag,
			rts:  true,
			size: f.size,
			addr: f.addr,
			rkey: f.rkey,
			seq:  f.seq,
		}
		trace.Record(trace.KindProtocol, ep.rank, u.seq, "msg.rts.rx")
		ep.stats.rdzvRx++
		for i, r := range ep.posted {
			ep.stats.matchScans++
			if match(r, src, u.tag) {
				ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
				ep.startRdzvReadLocked(r, u)
				return
			}
		}
		ep.unexp = append(ep.unexp, u)
	case kFIN:
		seq := f.seq
		trace.Record(trace.KindProtocol, ep.rank, seq, "msg.fin.rx")
		if s, ok := ep.rdzvSrc[seq]; ok {
			delete(ep.rdzvSrc, seq)
			// Settle the send's flow-control credit and wait entry;
			// the RTS itself was unsignaled, so the FIN is the only
			// completion this send gets.
			delete(ep.sendWaits, s.tok)
			if _, ok := ep.tokPeer[s.tok]; ok {
				delete(ep.tokPeer, s.tok)
				ep.inflight[s.peer]--
			}
			_ = ep.dev.DeregMR(s.mr)
			select {
			case s.wait.done <- nil:
			default:
			}
		}
	}
}

func (ep *Endpoint) handleSendCQE(e verbs.CQE) {
	ep.mu.Lock()
	if d, ok := ep.rdzvDst[e.WRID]; ok {
		delete(ep.rdzvDst, e.WRID)
		ep.mu.Unlock()
		if e.Status == verbs.StatusOK {
			// FIN the sender, then deliver.
			fin := ep.framePool.Get(finFrameLen)
			fin[0] = kFIN
			binary.LittleEndian.PutUint64(fin[1:], d.seq)
			if ep.postSendRetry(d.src, fin, 0) == nil {
				ep.framePool.Put(fin)
			}
			d.done <- Message{Src: d.src, Tag: d.tag, Data: d.buf}
		}
		return
	}
	w, ok := ep.sendWaits[e.WRID]
	if ok {
		delete(ep.sendWaits, e.WRID)
	}
	if peer, ok := ep.tokPeer[e.WRID]; ok {
		delete(ep.tokPeer, e.WRID)
		ep.inflight[peer]--
	}
	ep.mu.Unlock()
	if ok {
		var err error
		if e.Status != verbs.StatusOK {
			err = fmt.Errorf("msg: send failed: %v", e.Status)
		}
		select {
		case w.done <- err:
		default:
		}
	}
}
