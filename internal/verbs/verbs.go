// Package verbs is a thin convenience layer over the simulated NIC,
// shaped like the subset of libibverbs that Photon's verbs backend
// consumes: open a device, register memory, create completion queues
// and queue pairs, post work, and poll completions.
//
// The layer exists for the same reason Photon has a backend layer: the
// middleware above it (package core) is written against this interface
// and never touches nicsim types directly, which is what lets the TCP
// backend substitute for the simulated-verbs backend.
package verbs

import (
	"fmt"
	"time"

	"photon/internal/errs"
	"photon/internal/fabric"
	"photon/internal/nicsim"
)

// Re-exported nicsim types: the verbs layer is deliberately transparent.
type (
	// MR is a registered memory region.
	MR = nicsim.MR
	// CQ is a completion queue.
	CQ = nicsim.CQ
	// QP is a reliable connected queue pair.
	QP = nicsim.QP
	// CQE is a completion queue entry.
	CQE = nicsim.CQE
	// SendWR is a send work request.
	SendWR = nicsim.SendWR
	// RecvWR is a receive work request.
	RecvWR = nicsim.RecvWR
	// Access is an MR permission mask.
	Access = nicsim.Access
)

// Re-exported opcodes, statuses and access flags.
const (
	OpSend           = nicsim.OpSend
	OpRDMAWrite      = nicsim.OpRDMAWrite
	OpRDMAWriteImm   = nicsim.OpRDMAWriteImm
	OpRDMARead       = nicsim.OpRDMARead
	OpAtomicFetchAdd = nicsim.OpAtomicFetchAdd
	OpAtomicCompSwap = nicsim.OpAtomicCompSwap
	OpRecv           = nicsim.OpRecv

	StatusOK = nicsim.StatusOK

	AccessAll          = nicsim.AccessAll
	AccessLocalWrite   = nicsim.AccessLocalWrite
	AccessRemoteRead   = nicsim.AccessRemoteRead
	AccessRemoteWrite  = nicsim.AccessRemoteWrite
	AccessRemoteAtomic = nicsim.AccessRemoteAtomic
)

// ErrTimeout is returned by PollN when completions do not arrive in
// time. It wraps the shared root sentinel (aliased as core.ErrTimeout),
// so errors.Is(err, core.ErrTimeout) matches timeouts from this layer.
var ErrTimeout = fmt.Errorf("verbs: poll timed out: %w", errs.ErrTimeout)

// Device is an opened RDMA device on one fabric node.
type Device struct {
	nic  *nicsim.NIC
	node int
}

// Open attaches a new device to the given fabric node.
func Open(fab *fabric.Fabric, node int, cfg nicsim.Config) (*Device, error) {
	nic, err := nicsim.New(fab, node, cfg)
	if err != nil {
		return nil, fmt.Errorf("verbs: open device on node %d: %w", node, err)
	}
	return &Device{nic: nic, node: node}, nil
}

// Node returns the fabric node index of the device.
func (d *Device) Node() int { return d.node }

// NIC exposes the underlying simulated NIC (for counters/ablation).
func (d *Device) NIC() *nicsim.NIC { return d.nic }

// RegMR registers buf for local and remote access per the mask.
func (d *Device) RegMR(buf []byte, access Access) (*MR, error) {
	return d.nic.RegisterMemory(buf, access)
}

// DeregMR removes a registration.
func (d *Device) DeregMR(mr *MR) error { return d.nic.DeregisterMemory(mr) }

// CreateCQ creates a completion queue of the given depth.
func (d *Device) CreateCQ(depth int) *CQ { return nicsim.NewCQ(depth) }

// CreateQP creates a queue pair bound to the given CQs.
func (d *Device) CreateQP(sendCQ, recvCQ *CQ) (*QP, error) {
	return d.nic.CreateQP(sendCQ, recvCQ)
}

// Close releases the device; all its QPs stop.
func (d *Device) Close() { d.nic.Close() }

// ConnectPair transitions two QPs (on different devices) into RTS bound
// to each other. In-process simulation makes the out-of-band exchange
// trivial; the TCP backend does a real exchange.
func ConnectPair(a, b *QP, nodeA, nodeB int) error {
	if err := a.Connect(nodeB, b.QPN()); err != nil {
		return err
	}
	return b.Connect(nodeA, a.QPN())
}

// PollN polls cq until n completions are reaped or the timeout expires,
// spinning with a short yield as Photon's progress loops do. It returns
// the completions collected so far along with ErrTimeout on expiry.
func PollN(cq *CQ, n int, timeout time.Duration) ([]CQE, error) {
	out := make([]CQE, 0, n)
	deadline := time.Now().Add(timeout)
	for len(out) < n {
		got := cq.Poll(n - len(out))
		out = append(out, got...)
		if len(out) >= n {
			break
		}
		if time.Now().After(deadline) {
			return out, ErrTimeout
		}
		time.Sleep(5 * time.Microsecond)
	}
	return out, nil
}

// PostAndWait posts a signaled work request and blocks until its
// completion arrives on cq, returning that CQE. Other completions
// reaped while waiting are returned too (in order); the matching one is
// last. It is a bootstrap/test helper, not a hot path.
func PostAndWait(qp *QP, cq *CQ, wr SendWR, timeout time.Duration) (CQE, error) {
	wr.Signaled = true
	if err := qp.PostSend(wr); err != nil {
		return CQE{}, err
	}
	deadline := time.Now().Add(timeout)
	for {
		for _, e := range cq.Poll(16) {
			if e.WRID == wr.WRID {
				return e, nil
			}
		}
		if time.Now().After(deadline) {
			return CQE{}, ErrTimeout
		}
		time.Sleep(5 * time.Microsecond)
	}
}
