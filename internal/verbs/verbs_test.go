package verbs

import (
	"bytes"
	"testing"
	"time"

	"photon/internal/fabric"
	"photon/internal/nicsim"
)

func newDevices(t *testing.T) (*Device, *Device) {
	t.Helper()
	fab := fabric.New(2, fabric.Model{})
	t.Cleanup(fab.Close)
	a, err := Open(fab, 0, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(fab, 1, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	return a, b
}

func TestOpenAndNode(t *testing.T) {
	a, b := newDevices(t)
	if a.Node() != 0 || b.Node() != 1 {
		t.Fatalf("nodes = %d %d", a.Node(), b.Node())
	}
	if a.NIC() == nil {
		t.Fatal("NIC accessor nil")
	}
}

func TestOpenOnBadNodeFails(t *testing.T) {
	fab := fabric.New(1, fabric.Model{})
	defer fab.Close()
	if _, err := Open(fab, 5, nicsim.Config{}); err == nil {
		t.Fatal("open on out-of-range node succeeded")
	}
}

func TestEndToEndWriteViaVerbs(t *testing.T) {
	a, b := newDevices(t)
	scq, rcq := a.CreateCQ(16), a.CreateCQ(16)
	qpA, err := a.CreateQP(scq, rcq)
	if err != nil {
		t.Fatal(err)
	}
	qpB, err := b.CreateQP(b.CreateCQ(16), b.CreateCQ(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := ConnectPair(qpA, qpB, a.Node(), b.Node()); err != nil {
		t.Fatal(err)
	}
	target := make([]byte, 64)
	mr, err := b.RegMR(target, AccessAll)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("via verbs layer")
	cqe, err := PostAndWait(qpA, scq, SendWR{
		WRID: 42, Op: OpRDMAWrite, Local: payload,
		RemoteAddr: mr.Base(), RKey: mr.RKey(),
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Status != StatusOK || cqe.WRID != 42 {
		t.Fatalf("cqe = %+v", cqe)
	}
	if !bytes.Equal(target[:len(payload)], payload) {
		t.Fatalf("write not placed: %q", target[:len(payload)])
	}
	if err := b.DeregMR(mr); err != nil {
		t.Fatal(err)
	}
}

func TestPollNCollectsAndTimesOut(t *testing.T) {
	a, b := newDevices(t)
	scq := a.CreateCQ(16)
	qpA, _ := a.CreateQP(scq, a.CreateCQ(16))
	qpB, _ := b.CreateQP(b.CreateCQ(16), b.CreateCQ(16))
	ConnectPair(qpA, qpB, 0, 1)
	mem := make([]byte, 64)
	mr, _ := b.RegMR(mem, AccessAll)
	for i := 0; i < 3; i++ {
		err := qpA.PostSend(SendWR{WRID: uint64(i), Op: OpRDMAWrite, Local: []byte{byte(i)},
			RemoteAddr: mr.Base() + uint64(i*8), RKey: mr.RKey(), Signaled: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := PollN(scq, 3, time.Second)
	if err != nil || len(got) != 3 {
		t.Fatalf("PollN = %d completions, err %v", len(got), err)
	}
	// Now ask for one more than will ever arrive.
	got, err = PollN(scq, 1, 20*time.Millisecond)
	if err != ErrTimeout || len(got) != 0 {
		t.Fatalf("PollN timeout = %v, %d completions", err, len(got))
	}
}

func TestPostAndWaitTimeout(t *testing.T) {
	a, b := newDevices(t)
	scq := a.CreateCQ(16)
	qpA, _ := a.CreateQP(scq, a.CreateCQ(16))
	qpB, _ := b.CreateQP(b.CreateCQ(16), b.CreateCQ(16))
	ConnectPair(qpA, qpB, 0, 1)
	// SEND with no posted receive is queued at the target forever:
	// PostAndWait must time out rather than hang.
	_, err := PostAndWait(qpA, scq, SendWR{WRID: 1, Op: OpSend, Local: []byte{1}}, 30*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPostAndWaitPostError(t *testing.T) {
	a, _ := newDevices(t)
	scq := a.CreateCQ(16)
	qp, _ := a.CreateQP(scq, a.CreateCQ(16))
	// Not connected: post must fail immediately.
	if _, err := PostAndWait(qp, scq, SendWR{WRID: 1, Op: OpSend, Local: []byte{1}}, time.Second); err == nil {
		t.Fatal("post on unconnected QP succeeded")
	}
}
