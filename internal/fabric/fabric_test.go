package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDeliverBasic(t *testing.T) {
	f := New(2, Model{})
	defer f.Close()
	got := make(chan Frame, 1)
	if err := f.Attach(1, func(fr Frame) { got <- fr }); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case fr := <-got:
		if fr.Src != 0 || fr.Dst != 1 || string(fr.Data) != "hello" {
			t.Fatalf("bad frame %+v", fr)
		}
	case <-time.After(time.Second):
		t.Fatal("frame not delivered")
	}
}

func TestInOrderDelivery(t *testing.T) {
	f := New(2, Model{})
	defer f.Close()
	const n = 1000
	var mu sync.Mutex
	var seen []byte
	done := make(chan struct{})
	f.Attach(1, func(fr Frame) {
		mu.Lock()
		seen = append(seen, fr.Data[0])
		if len(seen) == n {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := f.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	for i, b := range seen {
		if b != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, b)
		}
	}
}

func TestSelfSend(t *testing.T) {
	f := New(1, Model{})
	defer f.Close()
	got := make(chan Frame, 1)
	f.Attach(0, func(fr Frame) { got <- fr })
	f.Send(0, 0, []byte{42})
	fr := <-got
	if fr.Src != 0 || fr.Dst != 0 || fr.Data[0] != 42 {
		t.Fatalf("self frame wrong: %+v", fr)
	}
}

func TestBadNode(t *testing.T) {
	f := New(2, Model{})
	defer f.Close()
	if err := f.Send(0, 5, nil); err != ErrBadNode {
		t.Fatalf("Send to bad node: %v", err)
	}
	if err := f.Send(-1, 0, nil); err != ErrBadNode {
		t.Fatalf("Send from bad node: %v", err)
	}
	if err := f.Attach(9, nil); err != ErrBadNode {
		t.Fatalf("Attach bad node: %v", err)
	}
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, Model{})
}

func TestLatencyModel(t *testing.T) {
	const lat = 2 * time.Millisecond
	f := New(2, Model{Latency: lat})
	defer f.Close()
	got := make(chan time.Time, 1)
	f.Attach(1, func(Frame) { got <- time.Now() })
	start := time.Now()
	f.Send(0, 1, []byte{1})
	arr := <-got
	if d := arr.Sub(start); d < lat {
		t.Fatalf("frame arrived after %v, want >= %v", d, lat)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1us per byte; a 1000-byte frame should take >= 1ms.
	f := New(2, Model{GapPerByte: time.Microsecond})
	defer f.Close()
	got := make(chan time.Time, 1)
	f.Attach(1, func(Frame) { got <- time.Now() })
	start := time.Now()
	f.Send(0, 1, make([]byte, 1000))
	arr := <-got
	if d := arr.Sub(start); d < time.Millisecond {
		t.Fatalf("serialization took %v, want >= 1ms", d)
	}
}

func TestPipelining(t *testing.T) {
	// With high latency but fast serialization, k frames should all
	// arrive in about one latency, not k latencies.
	const lat = 20 * time.Millisecond
	f := New(2, Model{Latency: lat})
	defer f.Close()
	const k = 10
	var n atomic.Int32
	done := make(chan time.Time, 1)
	f.Attach(1, func(Frame) {
		if n.Add(1) == k {
			done <- time.Now()
		}
	})
	start := time.Now()
	for i := 0; i < k; i++ {
		f.Send(0, 1, []byte{byte(i)})
	}
	arr := <-done
	if d := arr.Sub(start); d > 5*lat {
		t.Fatalf("k frames took %v; links are not pipelining", d)
	}
}

func TestFaultInjectionDrops(t *testing.T) {
	f := New(2, Model{})
	defer f.Close()
	var delivered atomic.Int32
	f.Attach(1, func(Frame) { delivered.Add(1) })
	f.SetFault(func(src, dst int) bool { return true })
	for i := 0; i < 10; i++ {
		if err := f.Send(0, 1, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	f.SetFault(nil)
	f.Send(0, 1, []byte{2})
	f.Drain()
	if got := delivered.Load(); got != 1 {
		t.Fatalf("delivered = %d, want 1 (only post-clear frame)", got)
	}
}

func TestStats(t *testing.T) {
	f := New(3, Model{})
	defer f.Close()
	f.Attach(1, func(Frame) {})
	f.Attach(2, func(Frame) {})
	f.Send(0, 1, make([]byte, 10))
	f.Send(0, 1, make([]byte, 20))
	f.Send(0, 2, make([]byte, 5))
	f.Drain()
	s01 := f.Stats(0, 1)
	if s01.Frames != 2 || s01.Bytes != 30 {
		t.Fatalf("link 0->1 stats = %+v", s01)
	}
	if s := f.Stats(1, 0); s.Frames != 0 {
		t.Fatalf("unused link stats = %+v", s)
	}
	tot := f.TotalStats()
	if tot.Frames != 3 || tot.Bytes != 35 {
		t.Fatalf("total stats = %+v", tot)
	}
}

func TestNoHandlerDropsWithoutPanic(t *testing.T) {
	f := New(2, Model{})
	defer f.Close()
	if err := f.Send(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if s := f.Stats(0, 1); s.Frames != 1 {
		t.Fatalf("frame not counted: %+v", s)
	}
}

func TestCloseDeliversQueuedThenRejects(t *testing.T) {
	f := New(2, Model{})
	var delivered atomic.Int32
	f.Attach(1, func(Frame) { delivered.Add(1) })
	for i := 0; i < 100; i++ {
		f.Send(0, 1, []byte{byte(i)})
	}
	f.Close()
	if got := delivered.Load(); got != 100 {
		t.Fatalf("delivered = %d, want 100 (queued frames flushed on close)", got)
	}
	if err := f.Send(0, 1, []byte{1}); err != ErrClosed {
		t.Fatalf("Send after close: %v, want ErrClosed", err)
	}
	if err := f.Attach(1, func(Frame) {}); err != ErrClosed {
		t.Fatalf("Attach after close: %v, want ErrClosed", err)
	}
	f.Close() // idempotent
}

func TestConcurrentSenders(t *testing.T) {
	f := New(4, Model{})
	defer f.Close()
	var delivered atomic.Int64
	for n := 0; n < 4; n++ {
		f.Attach(n, func(Frame) { delivered.Add(1) })
	}
	var wg sync.WaitGroup
	const per = 500
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			wg.Add(1)
			go func(s, d int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := f.Send(s, d, []byte{1}); err != nil {
						t.Error(err)
						return
					}
				}
			}(src, dst)
		}
	}
	wg.Wait()
	f.Drain()
	if got := delivered.Load(); got != 16*per {
		t.Fatalf("delivered = %d, want %d", got, 16*per)
	}
}

func TestQueueDepthDefault(t *testing.T) {
	f := New(2, Model{})
	defer f.Close()
	if f.Model().QueueDepth != DefaultQueueDepth {
		t.Fatalf("QueueDepth = %d", f.Model().QueueDepth)
	}
}

func TestNumNodes(t *testing.T) {
	f := New(7, Model{})
	defer f.Close()
	if f.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d", f.NumNodes())
	}
}
