// Package fabric simulates the cluster interconnect that Photon's
// simulated NICs attach to.
//
// The fabric connects N nodes with directed, reliable, in-order links.
// Each link applies a LogGP-style delay model: a frame departs when the
// link is free (serialization at the configured per-byte gap plus a
// per-frame overhead) and arrives one latency later. Frames on one link
// are pipelined — their arrival times are spaced by serialization time,
// not by latency — matching how a real wire behaves.
//
// The fabric is deliberately dumb: it moves opaque byte frames. All
// RDMA semantics (queue pairs, memory registration, completions) live in
// package nicsim above it. This mirrors the hardware split the original
// Photon paper assumes: middleware above verbs, verbs above a reliable
// fabric.
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Model configures per-link timing. The zero Model delivers frames
// asynchronously but with no added delay, which is the right default for
// functional tests; benchmarks set realistic values.
type Model struct {
	// Latency is the one-way propagation delay per frame.
	Latency time.Duration
	// GapPerByte is the serialization time per payload byte
	// (the reciprocal of bandwidth). Zero means infinite bandwidth.
	GapPerByte time.Duration
	// PerFrame is a fixed per-frame overhead added to serialization
	// (models per-packet processing, the LogGP "gap").
	PerFrame time.Duration
	// QueueDepth bounds the number of in-flight frames per directed
	// link; senders block when the queue is full (backpressure).
	// Zero selects the default of 4096.
	QueueDepth int
}

// DefaultQueueDepth is the per-link frame queue bound used when
// Model.QueueDepth is zero.
const DefaultQueueDepth = 4096

// Frame is one unit of delivery: an opaque payload from Src to Dst.
type Frame struct {
	Src, Dst int
	Data     []byte
}

// Handler receives frames addressed to a node. Handlers run on the
// link's delivery goroutine and must not block for long; the simulated
// NIC copies out what it needs and returns.
type Handler func(Frame)

// LinkStats reports per-directed-link traffic counters. MaxQueued is
// the high-water mark of queue occupancy observed at enqueue time: how
// close the link came to its QueueDepth bound. A MaxQueued at or near
// QueueDepth means senders on this link experienced blocking
// backpressure; well below it, the queue bound was never the
// constraint.
type LinkStats struct {
	Frames    int64
	Bytes     int64
	MaxQueued int64
}

// Fabric is a simulated interconnect among NumNodes nodes.
type Fabric struct {
	model Model
	n     int

	//photon:lock fabric 10
	mu       sync.Mutex
	handlers []Handler
	links    map[linkKey]*link
	closed   bool
	done     chan struct{} // closed by Close; unblocks senders and stops links
	wg       sync.WaitGroup

	// fault, when non-nil, is consulted per frame; returning true
	// drops the frame (used by failure-injection tests).
	fault atomic.Pointer[func(src, dst int) bool]
}

type linkKey struct{ src, dst int }

type queued struct {
	fr Frame
	at time.Time // enqueue time; departure is computed from this, not
	// from the delivery goroutine's clock, so latencies pipeline
}

type link struct {
	ch        chan queued
	nextFree  time.Time
	frames    atomic.Int64
	bytes     atomic.Int64
	maxQueued atomic.Int64
}

// noteOccupancy folds the current queue length into the link's
// high-water mark.
func (l *link) noteOccupancy() {
	occ := int64(len(l.ch))
	for {
		cur := l.maxQueued.Load()
		if occ <= cur || l.maxQueued.CompareAndSwap(cur, occ) {
			return
		}
	}
}

// ErrClosed is returned by Send after the fabric has been closed.
var ErrClosed = errors.New("fabric: closed")

// ErrBadNode is returned for out-of-range node indices.
var ErrBadNode = errors.New("fabric: node index out of range")

// New creates a fabric connecting n nodes under the given delay model.
func New(n int, m Model) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("fabric: invalid node count %d", n))
	}
	if m.QueueDepth <= 0 {
		m.QueueDepth = DefaultQueueDepth
	}
	return &Fabric{
		model:    m,
		n:        n,
		handlers: make([]Handler, n),
		links:    make(map[linkKey]*link),
		done:     make(chan struct{}),
	}
}

// NumNodes returns the number of attached node slots.
func (f *Fabric) NumNodes() int { return f.n }

// Model returns the configured delay model.
func (f *Fabric) Model() Model { return f.model }

// Attach installs the frame handler for a node. It must be called once
// per node before any frame addressed to it is delivered; frames
// arriving at a node with no handler are dropped (counted in stats).
func (f *Fabric) Attach(node int, h Handler) error {
	if node < 0 || node >= f.n {
		return ErrBadNode
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.handlers[node] = h
	return nil
}

// SetFault installs a frame-drop predicate for failure injection; pass
// nil to clear. The predicate runs on the sender's goroutine.
func (f *Fabric) SetFault(fn func(src, dst int) bool) {
	if fn == nil {
		f.fault.Store(nil)
		return
	}
	f.fault.Store(&fn)
}

// Send enqueues a frame from src to dst. The fabric takes ownership of
// data; callers must not modify it afterwards. Send blocks if the link
// queue is full, modeling transmit backpressure.
//
// Deadlock freedom: delivery handlers re-enter Send (the simulated NIC
// ACKs every request on the reverse link), so a blocked Send can stall
// a delivery goroutine. A cycle therefore needs every directed link in
// it full at once — for a node pair, QueueDepth frames outstanding in
// BOTH directions with neither receiver draining. Photon's middleware
// cannot reach that state: the ledger credit flow bounds a peer's
// un-ACKed requests to a small multiple of LedgerSlots (hundreds of
// frames at defaults, far below DefaultQueueDepth), and responders
// consume requests unconditionally — delivery never waits on
// middleware-level progress, only on reverse-link space for the ACK,
// which the credit bound keeps available. Deployments that shrink
// QueueDepth below the credit bound give up this argument; the
// MaxQueued high-water in LinkStats exists to check the margin.
func (f *Fabric) Send(src, dst int, data []byte) error {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		return ErrBadNode
	}
	if fp := f.fault.Load(); fp != nil && (*fp)(src, dst) {
		return nil // silently dropped, like a lossy link
	}
	l, err := f.linkFor(src, dst)
	if err != nil {
		return err
	}
	select {
	case l.ch <- queued{fr: Frame{Src: src, Dst: dst, Data: data}, at: time.Now()}:
		l.noteOccupancy()
		return nil
	case <-f.done:
		return ErrClosed
	}
}

func (f *Fabric) linkFor(src, dst int) (*link, error) {
	key := linkKey{src, dst}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	l, ok := f.links[key]
	if !ok {
		l = &link{ch: make(chan queued, f.model.QueueDepth)}
		f.links[key] = l
		f.wg.Add(1)
		go f.run(l)
	}
	return l, nil
}

// run is the per-link delivery goroutine. It enforces in-order delivery
// with pipelined arrival times: arrival(i) = depart(i) + Latency, where
// depart(i) = max(now, depart(i-1)) + serialization(i).
func (f *Fabric) run(l *link) {
	defer f.wg.Done()
	for {
		var q queued
		select {
		case q = <-l.ch:
		case <-f.done:
			// Flush whatever is already queued, then exit.
			for {
				select {
				case q = <-l.ch:
					f.deliver(l, q)
				default:
					return
				}
			}
		}
		f.deliver(l, q)
	}
}

// deliver applies the delay model and hands one frame to its handler.
func (f *Fabric) deliver(l *link, q queued) {
	{
		fr := q.fr
		m := f.model
		if m.Latency > 0 || m.GapPerByte > 0 || m.PerFrame > 0 {
			depart := l.nextFree
			if depart.Before(q.at) {
				depart = q.at
			}
			xmit := m.PerFrame + time.Duration(len(fr.Data))*m.GapPerByte
			depart = depart.Add(xmit)
			l.nextFree = depart
			arrive := depart.Add(m.Latency)
			if d := time.Until(arrive); d > 0 {
				time.Sleep(d)
			}
		}
		l.frames.Add(1)
		l.bytes.Add(int64(len(fr.Data)))
		f.mu.Lock()
		h := f.handlers[fr.Dst]
		f.mu.Unlock()
		if h != nil {
			h(fr)
		}
	}
}

// Stats returns traffic counters for the directed link src->dst.
func (f *Fabric) Stats(src, dst int) LinkStats {
	f.mu.Lock()
	l := f.links[linkKey{src, dst}]
	f.mu.Unlock()
	if l == nil {
		return LinkStats{}
	}
	return LinkStats{Frames: l.frames.Load(), Bytes: l.bytes.Load(), MaxQueued: l.maxQueued.Load()}
}

// TotalStats sums traffic over all links; MaxQueued is the maximum
// high-water across them (the most congested link).
func (f *Fabric) TotalStats() LinkStats {
	f.mu.Lock()
	links := make([]*link, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.mu.Unlock()
	var t LinkStats
	for _, l := range links {
		t.Frames += l.frames.Load()
		t.Bytes += l.bytes.Load()
		if hw := l.maxQueued.Load(); hw > t.MaxQueued {
			t.MaxQueued = hw
		}
	}
	return t
}

// Drain blocks until every link queue observed at call time has been
// delivered. It is a test aid, not a synchronization primitive for
// protocols (those use completions).
func (f *Fabric) Drain() {
	for {
		f.mu.Lock()
		pending := 0
		for _, l := range f.links {
			pending += len(l.ch)
		}
		f.mu.Unlock()
		if pending == 0 {
			// One more yield so in-flight handler calls finish.
			time.Sleep(100 * time.Microsecond)
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Close shuts the fabric down: queued frames are still delivered, and
// Close returns once all delivery goroutines exit. Send after Close
// returns ErrClosed.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	close(f.done)
	f.mu.Unlock()
	f.wg.Wait()
}
