package fabric

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestBackpressureSaturatesOneLink drives a link with a tiny queue and
// a slow delivery model far past its depth. Send must block (not error,
// not drop), the high-water mark must show the queue actually filled,
// and every frame must still arrive — backpressure, not deadlock.
func TestBackpressureSaturatesOneLink(t *testing.T) {
	const (
		depth = 8
		total = 200
	)
	f := New(2, Model{QueueDepth: depth, PerFrame: 20 * time.Microsecond})
	defer f.Close()
	var delivered atomic.Int64
	if err := f.Attach(1, func(Frame) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := f.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	if got := delivered.Load(); got != total {
		t.Fatalf("delivered %d frames, want %d", got, total)
	}
	st := f.Stats(0, 1)
	if st.Frames != total {
		t.Errorf("link frames = %d, want %d", st.Frames, total)
	}
	if st.MaxQueued < depth/2 {
		t.Errorf("high-water %d never approached depth %d: the link was not saturated", st.MaxQueued, depth)
	}
	if st.MaxQueued > depth {
		t.Errorf("high-water %d exceeds queue depth %d", st.MaxQueued, depth)
	}
}

// TestBackpressureHandlerReentry saturates the forward link while the
// receiver's handler re-enters Send to ACK every frame on the reverse
// link — the exact shape the simulated NIC uses. The reverse link has
// room (its receiver only counts), so delivery keeps draining the
// saturated direction: the documented deadlock-freedom argument for
// one-direction congestion.
func TestBackpressureHandlerReentry(t *testing.T) {
	const (
		depth = 4
		total = 100
	)
	f := New(2, Model{QueueDepth: depth, PerFrame: 10 * time.Microsecond})
	defer f.Close()
	var acks atomic.Int64
	if err := f.Attach(0, func(Frame) { acks.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if err := f.Attach(1, func(fr Frame) {
		if err := f.Send(1, 0, []byte{fr.Data[0]}); err != nil {
			t.Errorf("ack send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if err := f.Send(0, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sender wedged: saturated link with re-entrant ACKs deadlocked")
	}
	deadline := time.Now().Add(10 * time.Second)
	for acks.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d acks arrived", acks.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
}
