// Package photon's top-level benchmarks: one testing.B target per
// reconstructed table/figure (see DESIGN.md's experiment index and
// EXPERIMENTS.md for the recorded results). They reuse the same
// measurement routines as cmd/photon-bench, so `go test -bench=.` and
// the CLI harness report the same quantities.
package photon_test

import (
	"sync"
	"testing"
	"time"

	"photon/internal/apps"
	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/msg"
	"photon/internal/runtime"
)

// env caches one 2-rank environment per benchmark.
func newBenchEnv(b *testing.B, n int, coreCfg core.Config, msgCfg msg.Config) *bench.Env {
	b.Helper()
	e, err := bench.NewEnv(n, fabric.Model{}, coreCfg, msgCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	return e
}

func sharedDescs(b *testing.B, e *bench.Env, size int) [][]mem.RemoteBuffer {
	b.Helper()
	_, descs, _, err := e.SharedBuffers(size)
	if err != nil {
		b.Fatal(err)
	}
	return descs
}

func reportLatency(b *testing.B, d time.Duration, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(d.Nanoseconds()), "ns/oneway")
}

// --- E1: put latency ------------------------------------------------

func BenchmarkE1PutLatencyPWC8B(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	descs := sharedDescs(b, e, 64*1024)
	b.ResetTimer()
	lat, err := bench.PingPongPWC(e.Phs, descs, 8, b.N)
	reportLatency(b, lat, err)
}

func BenchmarkE1PutLatencyPWC64K(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	descs := sharedDescs(b, e, 128*1024)
	b.ResetTimer()
	lat, err := bench.PingPongPWC(e.Phs, descs, 64*1024, b.N)
	reportLatency(b, lat, err)
}

func BenchmarkE1PutLatencyBaseline8B(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	b.ResetTimer()
	lat, err := bench.PingPongBaseline(e.MsgJob, 8, b.N)
	reportLatency(b, lat, err)
}

// --- E2: get latency ------------------------------------------------

func BenchmarkE2GetLatencyGWC(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	descs := sharedDescs(b, e, 64*1024)
	b.ResetTimer()
	lat, err := bench.GetLatencyGWC(e.Phs, descs, 4096, b.N)
	reportLatency(b, lat, err)
}

func BenchmarkE2GetLatencyBaseline(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	b.ResetTimer()
	lat, err := bench.GetLatencyBaseline(e.MsgJob, 4096, b.N)
	reportLatency(b, lat, err)
}

// --- E3: bandwidth --------------------------------------------------

func BenchmarkE3BandwidthPWC64K(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{LedgerSlots: 256}, msg.Config{})
	descs := sharedDescs(b, e, 1<<20)
	b.ResetTimer()
	bw, err := bench.StreamBandwidthPWC(e.Phs, descs, 64*1024, 16, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 * 1024)
	b.ReportMetric(bw/(1<<20), "MiB/s")
}

func BenchmarkE3BandwidthBaseline64K(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{RecvSlots: 256})
	b.ResetTimer()
	bw, err := bench.StreamBandwidthBaseline(e.MsgJob, 64*1024, 16, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 * 1024)
	b.ReportMetric(bw/(1<<20), "MiB/s")
}

// --- E4: message rate -----------------------------------------------

func BenchmarkE4MessageRatePWC4T(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{LedgerSlots: 512}, msg.Config{})
	per := b.N/4 + 1
	b.ResetTimer()
	rate, err := bench.MessageRatePWC(e.Phs, 4, per)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rate, "msg/s")
}

func BenchmarkE4MessageRateBaseline4T(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{RecvSlots: 512})
	per := b.N/4 + 1
	b.ResetTimer()
	rate, err := bench.MessageRateBaseline(e.MsgJob, 4, per)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rate, "msg/s")
}

// --- E5: notification overhead ---------------------------------------

func BenchmarkE5ProbeOverheadPWC(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	descs := sharedDescs(b, e, 4096)
	b.ResetTimer()
	lat, err := bench.NotifyLatencyPWC(e.Phs, descs, b.N)
	reportLatency(b, lat, err)
}

func BenchmarkE5ProbeOverheadBaseline(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	b.ResetTimer()
	lat, err := bench.PingPongBaseline(e.MsgJob, 1, b.N)
	reportLatency(b, lat, err)
}

// --- E6: eager/rendezvous crossover ----------------------------------

func BenchmarkE6Eager4K(b *testing.B) {
	e, err := bench.NewPhotonOnly(2, fabric.Model{}, core.Config{EagerEntrySize: 64 * 1024, LedgerSlots: 32})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	b.ResetTimer()
	lat, err := bench.PingPongSend(e.Phs, 4096, b.N)
	reportLatency(b, lat, err)
}

func BenchmarkE6Rendezvous4K(b *testing.B) {
	e, err := bench.NewPhotonOnly(2, fabric.Model{}, core.Config{ForceRendezvous: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	b.ResetTimer()
	lat, err := bench.PingPongSend(e.Phs, 4096, b.N)
	reportLatency(b, lat, err)
}

// --- E7: ledger size -------------------------------------------------

func BenchmarkE7LedgerSlots8(b *testing.B)   { benchLedgerSlots(b, 8) }
func BenchmarkE7LedgerSlots64(b *testing.B)  { benchLedgerSlots(b, 64) }
func BenchmarkE7LedgerSlots512(b *testing.B) { benchLedgerSlots(b, 512) }

func benchLedgerSlots(b *testing.B, slots int) {
	e, err := bench.NewPhotonOnly(2, fabric.Model{}, core.Config{LedgerSlots: slots})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	b.ResetTimer()
	rate, err := bench.SaturatedSendThroughput(e.Phs, 8, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rate, "msg/s")
}

// --- E8: GUPS ---------------------------------------------------------

func BenchmarkE8GUPSPhoton(b *testing.B) {
	e := newBenchEnv(b, 4, core.Config{}, msg.Config{})
	cfg := apps.GUPSConfig{TableWordsPerRank: 1 << 12, UpdatesPerRank: b.N/4 + 1, Seed: 42}
	b.ResetTimer()
	res, err := apps.RunGUPSPhoton(e.Phs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.UpdatesPerSec, "updates/s")
}

func BenchmarkE8GUPSBaseline(b *testing.B) {
	e := newBenchEnv(b, 4, core.Config{}, msg.Config{})
	cfg := apps.GUPSConfig{TableWordsPerRank: 1 << 12, UpdatesPerRank: b.N/4 + 1, Seed: 42}
	b.ResetTimer()
	res, err := apps.RunGUPSBaseline(e.MsgJob, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.UpdatesPerSec, "updates/s")
}

// --- E9: stencil ------------------------------------------------------

func BenchmarkE9StencilPhoton256(b *testing.B) {
	e := newBenchEnv(b, 4, core.Config{EagerEntrySize: 16 * 1024}, msg.Config{})
	b.ResetTimer()
	res, err := apps.RunStencilPhoton(e.Phs, apps.StencilConfig{N: 256, Iterations: b.N})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.PerIter.Nanoseconds()), "ns/iter")
}

func BenchmarkE9StencilBaseline256(b *testing.B) {
	e := newBenchEnv(b, 4, core.Config{}, msg.Config{EagerLimit: 16 * 1024})
	b.ResetTimer()
	res, err := apps.RunStencilBaseline(e.MsgJob, apps.StencilConfig{N: 256, Iterations: b.N})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.PerIter.Nanoseconds()), "ns/iter")
}

// --- E10: BFS ----------------------------------------------------------

func BenchmarkE10BFS4Ranks(b *testing.B) {
	e, err := bench.NewPhotonOnly(4, fabric.Model{}, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	locs := make([]*runtime.Locality, 4)
	for r, ph := range e.Phs {
		l := runtime.NewLocality(ph, runtime.Config{Timeout: 60 * time.Second})
		if err := apps.RegisterBFSActions(l); err != nil {
			b.Fatal(err)
		}
		l.Start()
		locs[r] = l
	}
	b.Cleanup(func() {
		for _, l := range locs {
			l.Shutdown()
		}
	})
	b.ResetTimer()
	var teps float64
	for i := 0; i < b.N; i++ {
		res, _, err := apps.RunBFSParcels(locs, apps.BFSConfig{Vertices: 1 << 10, Degree: 8, Seed: 13, Root: 0})
		if err != nil {
			b.Fatal(err)
		}
		teps = res.TEPS
	}
	b.ReportMetric(teps, "TEPS")
}

// --- E11: backends ------------------------------------------------------

func BenchmarkE11BackendVsim(b *testing.B) {
	e, err := bench.NewPhotonOnly(2, fabric.Model{}, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	b.ResetTimer()
	lat, err := bench.PingPongSend(e.Phs, 8, b.N)
	reportLatency(b, lat, err)
}

func BenchmarkE11BackendTCP(b *testing.B) {
	phs, cleanup, err := bench.NewTCPPhotons(2, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cleanup)
	b.ResetTimer()
	lat, err := bench.PingPongSend(phs, 8, b.N)
	reportLatency(b, lat, err)
}

// --- E12: atomics --------------------------------------------------------

func BenchmarkE12FetchAddLatency(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	descs := sharedDescs(b, e, 64)
	b.ResetTimer()
	lat, err := bench.AtomicLatency(e.Phs, descs, b.N)
	reportLatency(b, lat, err)
}

func BenchmarkE12FetchAddRateW16(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	descs := sharedDescs(b, e, 64)
	b.ResetTimer()
	rate, err := bench.AtomicRate(e.Phs, descs, 16, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rate, "ops/s")
}

func BenchmarkE12UpdateBaseline(b *testing.B) {
	e := newBenchEnv(b, 2, core.Config{}, msg.Config{})
	b.ResetTimer()
	lat, err := bench.AtomicUpdateBaseline(e.MsgJob, b.N)
	reportLatency(b, lat, err)
}

// --- microbenchmarks of hot internal paths -----------------------------

func BenchmarkPackedSendThroughput(b *testing.B) {
	e, err := bench.NewPhotonOnly(2, fabric.Model{}, core.Config{LedgerSlots: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	b.ResetTimer()
	rate, err := bench.SaturatedSendThroughput(e.Phs, 64, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rate, "msg/s")
}

func BenchmarkProgressIdle(b *testing.B) {
	e, err := bench.NewPhotonOnly(4, fabric.Model{}, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	ph := e.Phs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.Progress()
	}
}

func BenchmarkParcelRoundTrip(b *testing.B) {
	e, err := bench.NewPhotonOnly(2, fabric.Model{}, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	locs := make([]*runtime.Locality, 2)
	for r, ph := range e.Phs {
		l := runtime.NewLocality(ph, runtime.Config{})
		l.RegisterAction("echo", func(ctx *runtime.Context) ([]byte, error) {
			return ctx.Payload, nil
		})
		l.Start()
		locs[r] = l
	}
	b.Cleanup(func() {
		for _, l := range locs {
			l.Shutdown()
		}
	})
	payload := []byte("ping")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := locs[0].Call(1, runtime.ActionIDFor("echo"), payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Wait(30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// A sanity test so `go test ./` at the repo root has a test to run.
func TestBenchmarkHarnessSmoke(t *testing.T) {
	var wg sync.WaitGroup
	e, err := bench.NewEnv(2, fabric.Model{}, core.Config{}, msg.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := e.Phs[0].SendBlocking(1, []byte("smoke"), 0, 1); err != nil {
			t.Error(err)
		}
	}()
	c, err := e.Phs[1].WaitRemote(1, 10*time.Second)
	if err != nil || string(c.Data) != "smoke" {
		t.Fatalf("smoke: %v %q", err, c.Data)
	}
	wg.Wait()
}
