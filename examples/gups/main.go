// GUPS: random remote updates against a distributed table — the
// irregular-access workload that motivates one-sided RMA with remote
// atomics.
//
// The Photon variant issues NIC-level fetch-adds: the target CPU never
// sees an update. The baseline variant routes every update through a
// two-sided request/acknowledge pair that the owner must receive,
// match, apply, and answer. Both produce an identical table checksum,
// so the comparison is apples to apples.
//
//	go run ./examples/gups [-ranks 4] [-updates 5000]
package main

import (
	"flag"
	"fmt"
	"log"

	"photon/internal/apps"
	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/msg"
)

func main() {
	ranks := flag.Int("ranks", 4, "job size")
	updates := flag.Int("updates", 5000, "updates per rank")
	words := flag.Int("words", 1<<12, "table words per rank")
	flag.Parse()

	cfg := apps.GUPSConfig{
		TableWordsPerRank: *words,
		UpdatesPerRank:    *updates,
		Seed:              2016, // IPDRM vintage
	}

	env, err := bench.NewEnv(*ranks, fabric.Model{}, core.Config{}, msg.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	photon, err := apps.RunGUPSPhoton(env.Phs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := apps.RunGUPSBaseline(env.MsgJob, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GUPS: %d ranks x %d updates into %d-word tables\n", *ranks, *updates, *words)
	fmt.Printf("  photon atomics:    %10.0f updates/s (checksum %d)\n", photon.UpdatesPerSec, photon.Checksum)
	fmt.Printf("  baseline req/ack:  %10.0f updates/s (checksum %d)\n", baseline.UpdatesPerSec, baseline.Checksum)
	if photon.Checksum != baseline.Checksum {
		log.Fatal("checksum mismatch: an update was lost or duplicated")
	}
	fmt.Printf("  speedup: %.2fx, no updates lost ✔\n", photon.UpdatesPerSec/baseline.UpdatesPerSec)
}
