// Quickstart: the smallest complete Photon program.
//
// It boots a two-rank job over the simulated-verbs backend, exchanges a
// registered buffer, and performs one put-with-completion: rank 0
// writes a greeting directly into rank 1's memory; rank 1 discovers the
// arrival purely by probing its completion ledger — no receive was ever
// posted.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/nicsim"
	"photon/internal/trace"
)

func main() {
	obs := flag.Bool("obs", false, "trace the put's lifecycle and print latency metrics")
	flag.Parse()

	// With -obs, both ranks share one trace ring and record latency
	// metrics; the full op lifecycle is dumped at the end.
	cfg := core.Config{}
	var ring *trace.Ring
	if *obs {
		ring = trace.NewRing(256)
		ring.Enable(true)
		cfg = core.Config{Trace: ring, Metrics: true}
	}
	// 1. A cluster: two simulated nodes on one in-process fabric.
	cluster, err := vsim.NewCluster(2, fabric.Model{}, nicsim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 2. Photon on every rank. Init is collective, so ranks boot
	// concurrently (in a real deployment each rank is its own process;
	// here they are goroutines).
	phs := make([]*core.Photon, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ph, err := core.Init(cluster.Backend(r), cfg)
			if err != nil {
				log.Fatalf("rank %d: %v", r, err)
			}
			phs[r] = ph
		}(r)
	}
	wg.Wait()
	defer phs[0].Close()
	defer phs[1].Close()

	// 3. Rank 1 registers a buffer; descriptors are exchanged (another
	// collective) so every rank can address it.
	target := make([]byte, 64)
	rb, lk, err := phs[1].RegisterBuffer(target)
	if err != nil {
		log.Fatal(err)
	}
	descs := make([][]mem.RemoteBuffer, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			contrib := mem.RemoteBuffer{}
			if r == 1 {
				contrib = rb
			}
			ds, err := phs[r].ExchangeBuffers(contrib)
			if err != nil {
				log.Fatalf("rank %d exchange: %v", r, err)
			}
			descs[r] = ds
		}(r)
	}
	wg.Wait()

	// 4. Rank 0 puts with completion: localRID 1 fires here when the
	// buffer is reusable; remoteRID 2 fires at rank 1 when the data is
	// visible there.
	msg := []byte("hello from rank 0 via RDMA")
	if err := phs[0].PutBlocking(1, msg, descs[0][1], 0, 1, 2); err != nil {
		log.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(1, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rank 0: local completion — buffer reusable")

	// 5. Rank 1 probes its ledger: the remote completion carries RID 2.
	comp, err := phs[1].WaitRemote(2, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	lk.Lock()
	got := string(target[:len(msg)])
	lk.Unlock()
	fmt.Printf("rank 1: remote completion RID=%d from rank %d\n", comp.RID, comp.Rank)
	fmt.Printf("rank 1: memory now reads %q\n", got)

	// 6. With -obs, show what the observability plane saw: the traced
	// lifecycle (post → ledger delivery → reap, correlated by RID) and
	// rank 0's latency snapshot.
	if *obs {
		fmt.Println("\nop-lifecycle trace:")
		fmt.Print(ring.Dump())
		fmt.Println("\nrank 0 metrics:")
		fmt.Print(phs[0].Metrics().Render())
	}
}
