// Stencil: a 2-D Jacobi iteration with one-sided halo exchange — the
// classic structured-grid workload an HPC runtime drives through RMA
// middleware.
//
// Each of four ranks owns a row band of an N x N grid. Per iteration a
// rank puts its boundary rows directly into its neighbors' halo rows;
// the put's remote completion is the arrival notification, so there are
// no receives and no barrier. The result is cross-checked against a
// serial reference and against the two-sided baseline.
//
//	go run ./examples/stencil [-n 256] [-iters 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"photon/internal/apps"
	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/msg"
)

func main() {
	n := flag.Int("n", 256, "grid dimension (must divide by 4)")
	iters := flag.Int("iters", 50, "Jacobi iterations")
	flag.Parse()

	cfg := apps.StencilConfig{N: *n, Iterations: *iters}

	serial, err := apps.RunStencilSerial(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Eager resources sized so one halo row (N*8 bytes) packs into a
	// single ledger write on the Photon side and a single eager message
	// on the baseline side.
	env, err := bench.NewEnv(4, fabric.Model{}, core.Config{EagerEntrySize: 16 * 1024}, msg.Config{EagerLimit: 16 * 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	photon, err := apps.RunStencilPhoton(env.Phs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := apps.RunStencilBaseline(env.MsgJob, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("grid %dx%d, %d iterations, 4 ranks\n", *n, *n, *iters)
	fmt.Printf("  serial reference: checksum %.6f\n", serial.Checksum)
	fmt.Printf("  photon one-sided: %8v/iter  checksum %.6f\n", photon.PerIter, photon.Checksum)
	fmt.Printf("  two-sided msgs:   %8v/iter  checksum %.6f\n", baseline.PerIter, baseline.Checksum)

	if math.Abs(photon.Checksum-serial.Checksum) > 1e-9*math.Abs(serial.Checksum) {
		log.Fatal("photon run diverged from the serial reference")
	}
	if math.Abs(baseline.Checksum-serial.Checksum) > 1e-9*math.Abs(serial.Checksum) {
		log.Fatal("baseline run diverged from the serial reference")
	}
	fmt.Println("  all three agree ✔")
}
