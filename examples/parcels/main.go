// Parcels: the HPX-lite runtime on top of Photon — registered actions,
// remote calls with futures, a global address space, and a parcel-driven
// fan-out/fan-in computation.
//
// It demonstrates the paper's integration claim end to end: every
// parcel below is one put-with-completion; the dispatcher never posts a
// receive.
//
//	go run ./examples/parcels [-ranks 4]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"time"

	"photon/internal/apps"
	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/runtime"
)

func main() {
	ranks := flag.Int("ranks", 4, "job size")
	flag.Parse()

	env, err := bench.NewPhotonOnly(*ranks, fabric.Model{}, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	// Boot one locality per rank; register actions before Start.
	locs := make([]*runtime.Locality, *ranks)
	for r, ph := range env.Phs {
		l := runtime.NewLocality(ph, runtime.Config{Timeout: 30 * time.Second})
		l.RegisterAction("square", func(ctx *runtime.Context) ([]byte, error) {
			v := binary.LittleEndian.Uint64(ctx.Payload)
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, v*v)
			return out, nil
		})
		l.Start()
		locs[r] = l
	}
	defer func() {
		for _, l := range locs {
			l.Shutdown()
		}
	}()

	// Fan out: rank 0 calls "square" on every rank, gathers futures.
	fmt.Printf("fan-out: rank 0 -> square(x) on %d ranks\n", *ranks)
	futs := make([]*runtime.Future, *ranks)
	for r := 0; r < *ranks; r++ {
		body := make([]byte, 8)
		binary.LittleEndian.PutUint64(body, uint64(r+10))
		f, err := locs[0].Call(r, runtime.ActionIDFor("square"), body)
		if err != nil {
			log.Fatal(err)
		}
		futs[r] = f
	}
	for r, f := range futs {
		out, err := f.Wait(10 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rank %d: square(%d) = %d\n", r, r+10, binary.LittleEndian.Uint64(out))
	}

	// Global address space: a distributed counter hammered from rank 0
	// with NIC atomics through futures.
	gasArrays := make([]*runtime.GlobalArray, *ranks)
	done := make(chan error, *ranks)
	for r, l := range locs {
		go func(r int, l *runtime.Locality) {
			g, err := runtime.NewGlobalArray(l, 64)
			gasArrays[r] = g
			done <- err
		}(r, l)
	}
	for range locs {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	idx := uint64(64 * (*ranks - 1)) // a word on the last rank
	for i := 0; i < 10; i++ {
		f, err := gasArrays[0].FetchAdd(idx, 1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.Value(10 * time.Second); err != nil {
			log.Fatal(err)
		}
	}
	f, _ := gasArrays[0].FetchAdd(idx, 0)
	v, err := f.Value(10 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gas: counter on rank %d after 10 remote fetch-adds = %d\n", *ranks-1, v)

	// And a real parcel application: BFS over a random graph, verified
	// against a serial reference.
	for _, l := range locs {
		if err := apps.RegisterBFSActions(l); err != nil {
			log.Fatal(err)
		}
	}
	cfg := apps.BFSConfig{Vertices: 1 << 10, Degree: 8, Seed: 5, Root: 0}
	res, dist, err := apps.RunBFSParcels(locs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ref := apps.BFSSerial(apps.GenGraph(cfg.Vertices, cfg.Degree, cfg.Seed), cfg.Root)
	for v := range ref {
		if dist[v] != ref[v] {
			log.Fatalf("BFS mismatch at vertex %d", v)
		}
	}
	fmt.Printf("bfs: %d vertices, depth %d, %.2f MTEPS, %d parcels — matches serial reference ✔\n",
		res.Vertices, res.Depth, res.TEPS/1e6, res.ParcelsSent)
}
